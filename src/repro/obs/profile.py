"""Kernel attribution profiler: achieved vs Eq.-1 model bandwidth.

The paper's whole argument is the comparison of *achieved* spMVM
bandwidth against the code-balance prediction ``B = 6 + 4a + 8/Nnzr``
(Eq. 1) — and Schubert/Hager/Fehske (arXiv:0910.4836) make the point
that without per-kernel attribution you cannot tell a format problem
from a memory-system problem.  This module is the attribution half:
:class:`Profiler` collects cheap per-call samples from
:meth:`repro.engine.bound.BoundMatrix.spmv`/``spmm`` and aggregates
them into a per-``(matrix, format, variant, op)`` table reporting

* achieved GF/s (2·nnz flops over the best sampled time),
* achieved GB/s under the Eq.-1 minimum-traffic byte count
  (``alpha = 1/Nnzr``: every RHS element loaded once),
* the model's bandwidth-limited prediction ``BW / B`` against a
  reference memory bandwidth, and the resulting model efficiency.

Overhead: a sample is two ``perf_counter`` reads plus a handful of
float adds on a per-handle slot (no dict lookup, no lock on the hot
path) — the ``bench_kernels.py --obs-overhead`` gate keeps the total
instrumentation cost of an spMVM loop under 5%.  Sampling every call
is the default; ``sample_every=N`` thins it further for tiny kernels.

The reference bandwidth comes from :func:`measure_host_bandwidth`
(a numpy copy-stream probe) unless set explicitly — so "model
efficiency" is relative to what *this* host can actually stream, the
same methodology the paper applies to its devices.

Like the rest of :mod:`repro.obs`, everything is inert until
:func:`repro.obs.metrics.enable` — and the profiler itself can be
toggled independently via :func:`set_sample_every` (0 = off).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.obs import metrics as _metrics
from repro.perfmodel.balance import alpha_bounds, code_balance_dp

__all__ = [
    "KernelSample",
    "KernelStats",
    "Profiler",
    "get_profiler",
    "record_kernel",
    "attribution_table",
    "publish_metrics",
    "render_table",
    "measure_host_bandwidth",
    "reference_bandwidth_gbs",
    "set_reference_bandwidth",
    "set_sample_every",
    "sample_every",
    "generation",
    "reset_profile",
]


# ---------------------------------------------------------------------------
# model arithmetic
# ---------------------------------------------------------------------------


def model_bytes_per_flop(nnzr: float, *, alpha: float | None = None) -> float:
    """Eq.-1 DP code balance; default alpha is the 1/Nnzr lower bound."""
    if alpha is None:
        alpha = alpha_bounds(nnzr)[0]
    return code_balance_dp(alpha, nnzr)


def measure_host_bandwidth(nbytes: int = 1 << 26, reps: int = 3) -> float:
    """Crude sustainable-copy bandwidth of this host in GB/s.

    Times ``numpy.copyto`` over a buffer far larger than LLC and counts
    read + write traffic.  Intentionally rough — it anchors the model
    efficiency column, it is not a STREAM benchmark.
    """
    import numpy as np

    n = max(nbytes // 8, 1)
    src = np.ones(n, dtype=np.float64)
    dst = np.empty_like(src)
    best = float("inf")
    for _ in range(max(reps, 1)):
        t0 = time.perf_counter()
        np.copyto(dst, src)
        best = min(best, time.perf_counter() - t0)
    return (2 * n * 8) / best / 1e9


# ---------------------------------------------------------------------------
# per-key aggregation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KernelSample:
    """One sampled kernel execution (what instrumentation hands in)."""

    matrix: str
    fmt: str
    variant: str
    op: str  # "spmv" | "spmm"
    seconds: float
    nnz: int
    nnzr: float
    #: columns of the RHS block (1 for spmv); flops scale with it
    block: int = 1


class KernelStats:
    """Aggregated samples for one (matrix, format, variant, op) key."""

    __slots__ = (
        "matrix", "fmt", "variant", "op",
        "calls", "samples", "total_s", "best_s",
        "nnz", "nnzr", "block",
    )

    def __init__(self, matrix: str, fmt: str, variant: str, op: str):
        self.matrix = matrix
        self.fmt = fmt
        self.variant = variant
        self.op = op
        self.calls = 0       # every kernel invocation (sampled or not)
        self.samples = 0     # timed invocations
        self.total_s = 0.0
        self.best_s = float("inf")
        self.nnz = 0
        self.nnzr = 0.0
        self.block = 1

    def add(self, sample: KernelSample) -> None:
        self.samples += 1
        self.total_s += sample.seconds
        if sample.seconds < self.best_s:
            self.best_s = sample.seconds
        self.nnz = sample.nnz
        self.nnzr = sample.nnzr
        self.block = sample.block

    # -- derived columns ---------------------------------------------------

    @property
    def flops(self) -> float:
        """Flops of one invocation (2 per nonzero per RHS column)."""
        return 2.0 * self.nnz * self.block

    @property
    def achieved_gflops(self) -> float:
        if self.best_s <= 0 or self.samples == 0:
            return 0.0
        return self.flops / self.best_s / 1e9

    @property
    def balance(self) -> float:
        """Eq.-1 bytes/flop at the alpha = 1/Nnzr lower bound."""
        return model_bytes_per_flop(max(self.nnzr, 1e-9))

    @property
    def achieved_gbs(self) -> float:
        """Bandwidth implied by the Eq.-1 minimum byte count."""
        return self.achieved_gflops * self.balance

    def model_gflops(self, bandwidth_gbs: float) -> float:
        """Roofline/bandwidth-limited prediction against ``bandwidth_gbs``."""
        if bandwidth_gbs <= 0:
            return 0.0
        return bandwidth_gbs / self.balance

    def efficiency(self, bandwidth_gbs: float) -> float:
        model = self.model_gflops(bandwidth_gbs)
        return self.achieved_gflops / model if model > 0 else 0.0

    def row(self, bandwidth_gbs: float) -> dict:
        """JSON-friendly attribution-table row."""
        return {
            "matrix": self.matrix,
            "format": self.fmt,
            "variant": self.variant,
            "op": self.op,
            "calls": self.calls,
            "samples": self.samples,
            "nnz": self.nnz,
            "nnzr": round(self.nnzr, 3),
            "block": self.block,
            "best_ms": (
                None if self.samples == 0 else self.best_s * 1e3
            ),
            "total_s": self.total_s,
            "achieved_gflops": self.achieved_gflops,
            "achieved_gbs": self.achieved_gbs,
            "balance_bytes_per_flop": self.balance,
            "model_gflops": self.model_gflops(bandwidth_gbs),
            "model_bw_gbs": bandwidth_gbs,
            "efficiency": self.efficiency(bandwidth_gbs),
        }


class Profiler:
    """Process-wide sample sink with its own generation counter.

    ``generation`` bumps on :meth:`reset` so hot-path caches (the
    engine's per-handle slots) drop stale references, mirroring
    :class:`repro.obs.metrics.MetricsRegistry`.
    """

    def __init__(self) -> None:
        self._stats: dict[tuple[str, str, str, str], KernelStats] = {}
        self._lock = threading.Lock()
        self.generation = 0
        #: sample every Nth call; 0 disables sampling entirely
        self.sample_every = 1
        self._reference_bw: float | None = None

    # -- recording ---------------------------------------------------------

    def slot(
        self, matrix: str, fmt: str, variant: str, op: str
    ) -> KernelStats:
        """The mutable per-key accumulator (cache me on your handle)."""
        key = (matrix, fmt, variant, op)
        with self._lock:
            st = self._stats.get(key)
            if st is None:
                st = self._stats[key] = KernelStats(matrix, fmt, variant, op)
            return st

    def record(self, sample: KernelSample) -> None:
        st = self.slot(sample.matrix, sample.fmt, sample.variant, sample.op)
        st.calls += 1
        st.add(sample)

    # -- reference bandwidth ----------------------------------------------

    def reference_bandwidth(self) -> float:
        """Model-column bandwidth (measured lazily on first use)."""
        if self._reference_bw is None:
            self._reference_bw = measure_host_bandwidth()
        return self._reference_bw

    def set_reference_bandwidth(self, gbs: float | None) -> None:
        if gbs is not None and gbs <= 0:
            raise ValueError(f"bandwidth must be > 0, got {gbs}")
        self._reference_bw = gbs

    # -- reporting ---------------------------------------------------------

    def table(self, *, bandwidth_gbs: float | None = None) -> list[dict]:
        """Attribution rows sorted by total kernel time, heaviest first."""
        bw = bandwidth_gbs or self.reference_bandwidth()
        with self._lock:
            stats = list(self._stats.values())
        rows = [s.row(bw) for s in stats if s.samples > 0]
        rows.sort(key=lambda r: r["total_s"], reverse=True)
        return rows

    def publish(self, *, bandwidth_gbs: float | None = None) -> int:
        """Push the table into the metrics registry as gauges.

        The Prometheus scrape then carries
        ``profile_achieved_gbs{matrix=...,format=...,variant=...,op=...}``
        etc. alongside the rest of the telemetry.  Returns row count.
        """
        if not _metrics.enabled():
            return 0
        rows = self.table(bandwidth_gbs=bandwidth_gbs)
        reg = _metrics.get_registry()
        gbs = reg.gauge(
            "profile_achieved_gbs",
            "Achieved bandwidth under the Eq.-1 minimum byte count",
        )
        gf = reg.gauge("profile_achieved_gflops", "Achieved kernel GF/s")
        model = reg.gauge(
            "profile_model_gflops",
            "Eq.-1 bandwidth-limited prediction at the reference bandwidth",
        )
        eff = reg.gauge(
            "profile_model_efficiency",
            "achieved_gflops / model_gflops",
        )
        calls = reg.gauge("profile_kernel_calls", "Kernel invocations seen")
        for r in rows:
            labels = {
                "matrix": r["matrix"],
                "format": r["format"],
                "variant": r["variant"],
                "op": r["op"],
            }
            gbs.set(r["achieved_gbs"], **labels)
            gf.set(r["achieved_gflops"], **labels)
            model.set(r["model_gflops"], **labels)
            eff.set(r["efficiency"], **labels)
            calls.set(r["calls"], **labels)
        return len(rows)

    def reset(self) -> None:
        with self._lock:
            self._stats.clear()
            self.generation += 1


_default_profiler = Profiler()


def get_profiler() -> Profiler:
    """The process-wide default profiler used by the engine hooks."""
    return _default_profiler


def record_kernel(sample: KernelSample) -> None:
    """Record one sample against the default profiler."""
    _default_profiler.record(sample)


def attribution_table(*, bandwidth_gbs: float | None = None) -> list[dict]:
    return _default_profiler.table(bandwidth_gbs=bandwidth_gbs)


def publish_metrics(*, bandwidth_gbs: float | None = None) -> int:
    return _default_profiler.publish(bandwidth_gbs=bandwidth_gbs)


def reference_bandwidth_gbs() -> float:
    return _default_profiler.reference_bandwidth()


def set_reference_bandwidth(gbs: float | None) -> None:
    _default_profiler.set_reference_bandwidth(gbs)


def sample_every() -> int:
    return _default_profiler.sample_every


def set_sample_every(n: int) -> None:
    """Sample every ``n``-th kernel call (0 turns the profiler off)."""
    if n < 0:
        raise ValueError(f"sample_every must be >= 0, got {n}")
    _default_profiler.sample_every = n


def generation() -> int:
    return _default_profiler.generation


def reset_profile() -> None:
    """Drop all samples (sampling config and reference BW untouched)."""
    _default_profiler.reset()


# ---------------------------------------------------------------------------
# terminal rendering (repro obs top)
# ---------------------------------------------------------------------------

_COLUMNS = (
    ("matrix", 10, "s"),
    ("format", 8, "s"),
    ("variant", 18, "s"),
    ("op", 4, "s"),
    ("calls", 7, "d"),
    ("best_ms", 9, ".3f"),
    ("achieved_gflops", 8, ".2f"),
    ("achieved_gbs", 8, ".2f"),
    ("model_gflops", 8, ".2f"),
    ("efficiency", 6, ".1%"),
)

_HEADERS = {
    "achieved_gflops": "GF/s",
    "achieved_gbs": "GB/s",
    "model_gflops": "model",
    "efficiency": "eff",
    "best_ms": "best ms",
}


def render_table(
    rows: list[dict] | None = None,
    *,
    bandwidth_gbs: float | None = None,
    limit: int | None = None,
) -> str:
    """The attribution table as fixed-width text (``repro obs top``)."""
    if rows is None:
        rows = attribution_table(bandwidth_gbs=bandwidth_gbs)
    if limit is not None:
        rows = rows[:limit]
    header = "  ".join(
        f"{_HEADERS.get(name, name):>{width}}"
        if fmt != "s"
        else f"{_HEADERS.get(name, name):<{width}}"
        for name, width, fmt in _COLUMNS
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        cells = []
        for name, width, fmt in _COLUMNS:
            v = r.get(name)
            if v is None:
                cells.append(" " * (width - 1) + "-")
            elif fmt == "s":
                cells.append(f"{str(v):<{width}}")
            elif fmt == "d":
                cells.append(f"{int(v):>{width}d}")
            else:
                cells.append(f"{v:>{width}{fmt}}")
        lines.append("  ".join(cells))
    if not rows:
        lines.append("(no kernel samples recorded)")
    if rows:
        bw = rows[0]["model_bw_gbs"]
        lines.append(f"model bandwidth: {bw:.1f} GB/s (Eq. 1, alpha = 1/Nnzr)")
    return "\n".join(lines)
