"""Exporters: Chrome trace-event JSON, Prometheus text, and JSONL.

Three sinks for the one observability substrate:

* :func:`chrome_trace` — the Trace Event Format consumed by
  ``chrome://tracing`` and https://ui.perfetto.dev: each span becomes a
  complete (``"ph": "X"``) event; ``pid`` is the rank and ``tid`` the
  resource/thread, so a 4-rank task-mode run renders as four process
  groups with one track per resource, exactly the Fig. 4 picture.
* :func:`prometheus_text` — the text exposition format
  (``# HELP`` / ``# TYPE`` + samples; histograms expand into
  cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``).
  :func:`parse_prometheus_text` reads it back for round-trip tests
  and ad-hoc diffing of two runs.
* :func:`write_jsonl` — one JSON object per line (spans then metric
  samples), the lowest-common-denominator feed for external pipelines.
"""

from __future__ import annotations

import json
import math
from typing import IO, Iterable

from repro.obs.metrics import Histogram, MetricsRegistry, Summary, get_registry
from repro.obs.spans import Span, Tracer, get_tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "parse_prometheus_text",
    "write_jsonl",
    "read_spans_jsonl",
]


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------


def _span_pid_tid(sp: Span) -> tuple[int | str, str]:
    """Track placement: rank attribute -> pid, resource/thread -> tid."""
    pid = sp.attrs.get("rank", 0)
    tid = str(sp.attrs.get("resource") or sp.thread or "main")
    return pid, tid


def chrome_trace(
    spans: Iterable[Span] | None = None, *, tracer: Tracer | None = None
) -> dict:
    """Spans as a Chrome/Perfetto trace-event document.

    Returns ``{"traceEvents": [...], "displayTimeUnit": "ms"}``.  Load
    the JSON dump in ``chrome://tracing`` or Perfetto.  Timestamps are
    microseconds rebased so the earliest span starts at 0.
    """
    if spans is None:
        spans = (tracer or get_tracer()).finished()
    spans = list(spans)
    base = min((s.start for s in spans), default=0.0)
    events: list[dict] = []
    seen_tracks: set[tuple[int | str, str]] = set()
    for sp in spans:
        pid, tid = _span_pid_tid(sp)
        if (pid, tid) not in seen_tracks:
            seen_tracks.add((pid, tid))
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"rank {pid}" if pid != 0 else "main"},
                }
            )
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": tid},
                }
            )
        args = {
            k: v
            for k, v in sp.attrs.items()
            if isinstance(v, (int, float, str, bool))
        }
        args["span_id"] = sp.span_id
        if sp.parent_id is not None:
            args["parent_id"] = sp.parent_id
        if sp.trace_id:
            args["trace_id"] = sp.trace_id
        if sp.links:
            args["links"] = len(sp.links)
        events.append(
            {
                "name": sp.name,
                "cat": str(sp.attrs.get("resource", "span")),
                "ph": "X",
                "ts": (sp.start - base) * 1e6,
                "dur": max(sp.duration, 0.0) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path_or_file, spans: Iterable[Span] | None = None, *, tracer: Tracer | None = None
) -> int:
    """Dump :func:`chrome_trace` as JSON; returns the event count."""
    doc = chrome_trace(spans, tracer=tracer)
    if hasattr(path_or_file, "write"):
        json.dump(doc, path_or_file, indent=1)
    else:
        with open(path_or_file, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1)
    return len(doc["traceEvents"])


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _escape_help(text: str) -> str:
    # HELP lines escape backslash and newline only (quotes stay literal)
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    f = float(value)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def prometheus_text(registry: MetricsRegistry | None = None) -> str:
    """The registry in Prometheus text exposition format (v0.0.4)."""
    registry = registry or get_registry()
    lines: list[str] = []
    for fam in registry.families():
        if fam.help:
            lines.append(f"# HELP {fam.name} {_escape_help(fam.help)}")
        lines.append(f"# TYPE {fam.name} {fam.kind}")
        for labels, child in fam.samples():
            if isinstance(child, Histogram):
                for bound, cum in child.buckets():
                    ll = dict(labels)
                    ll["le"] = _format_value(bound)
                    lines.append(
                        f"{fam.name}_bucket{_format_labels(ll)} {cum}"
                    )
                lines.append(
                    f"{fam.name}_sum{_format_labels(labels)} "
                    f"{_format_value(child.sum)}"
                )
                lines.append(
                    f"{fam.name}_count{_format_labels(labels)} {child.count}"
                )
            elif isinstance(child, Summary):
                for q, v in child.snapshot().items():
                    ll = dict(labels)
                    ll["quantile"] = _format_value(q)
                    val = "NaN" if math.isnan(v) else _format_value(v)
                    lines.append(f"{fam.name}{_format_labels(ll)} {val}")
                lines.append(
                    f"{fam.name}_sum{_format_labels(labels)} "
                    f"{_format_value(child.sum)}"
                )
                lines.append(
                    f"{fam.name}_count{_format_labels(labels)} {child.count}"
                )
            else:
                lines.append(
                    f"{fam.name}{_format_labels(labels)} "
                    f"{_format_value(child.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def parse_prometheus_text(text: str) -> dict[str, dict]:
    """Parse text exposition back into plain data (round-trip helper).

    Returns ``{family_name: {"kind": str, "help": str,
    "samples": {(sample_name, label_key): value}}}`` where
    ``label_key`` is a sorted tuple of ``(label, value)`` pairs.
    Histogram series are folded into their base family name.
    """
    out: dict[str, dict] = {}

    def family_for(sample_name: str) -> dict:
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if trimmed and out.get(trimmed, {}).get("kind") in ("histogram", "summary"):
                base = trimmed
                break
        return out.setdefault(
            base, {"kind": "untyped", "help": "", "samples": {}}
        )

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            out.setdefault(name, {"kind": "untyped", "help": "", "samples": {}})
            out[name]["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            out.setdefault(name, {"kind": "untyped", "help": "", "samples": {}})
            out[name]["kind"] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        # sample line: name{l1="v1",...} value
        if "{" in line:
            name, _, rest = line.partition("{")
            label_str, _, value_str = rest.rpartition("} ")
            labels = []
            for item in _split_labels(label_str):
                k, _, v = item.partition("=")
                labels.append((k, json.loads(v.replace(r"\n", "\\n"))))
            key = tuple(sorted(labels))
        else:
            name, _, value_str = line.partition(" ")
            key = ()
        value_str = value_str.strip()
        if value_str == "+Inf":
            value = math.inf
        elif value_str == "-Inf":
            value = -math.inf
        elif value_str == "NaN":
            value = math.nan
        else:
            value = float(value_str)
        family_for(name)["samples"][(name, key)] = value
    return out


def _split_labels(label_str: str) -> list[str]:
    """Split ``k1="v1",k2="v2"`` respecting quoted commas."""
    items: list[str] = []
    depth_quote = False
    cur: list[str] = []
    i = 0
    while i < len(label_str):
        c = label_str[i]
        if c == "\\" and depth_quote:
            cur.append(c)
            if i + 1 < len(label_str):
                cur.append(label_str[i + 1])
                i += 2
                continue
        elif c == '"':
            depth_quote = not depth_quote
            cur.append(c)
        elif c == "," and not depth_quote:
            if cur:
                items.append("".join(cur))
            cur = []
        else:
            cur.append(c)
        i += 1
    if cur:
        items.append("".join(cur))
    return items


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def _metric_records(registry: MetricsRegistry) -> Iterable[dict]:
    for fam in registry.families():
        for labels, child in fam.samples():
            rec: dict = {
                "type": "metric",
                "name": fam.name,
                "kind": fam.kind,
                "labels": labels,
            }
            if isinstance(child, Histogram):
                rec["sum"] = child.sum
                rec["count"] = child.count
                rec["buckets"] = [
                    {"le": "+Inf" if b == math.inf else b, "count": c}
                    for b, c in child.buckets()
                ]
            elif isinstance(child, Summary):
                rec["sum"] = child.sum
                rec["count"] = child.count
                rec["quantiles"] = {
                    str(q): (None if math.isnan(v) else v)
                    for q, v in child.snapshot().items()
                }
            else:
                rec["value"] = child.value
            yield rec


def _span_records(spans: Iterable[Span]) -> Iterable[dict]:
    for sp in spans:
        rec = {
            "type": "span",
            "name": sp.name,
            "span_id": sp.span_id,
            "parent_id": sp.parent_id,
            "trace_id": sp.trace_id,
            "start": sp.start,
            "end": sp.end,
            "thread": sp.thread,
            "attrs": {
                k: v
                for k, v in sp.attrs.items()
                if isinstance(v, (int, float, str, bool))
            },
        }
        if sp.links:
            rec["links"] = [[t, s] for t, s in sp.links]
        yield rec


def read_spans_jsonl(path_or_file) -> list[Span]:
    """Read ``"type": "span"`` records from a JSONL file back into
    :class:`Span` objects (metric and other records are skipped).

    This is the persistence half of ``repro obs trace <id>``: a run
    dumps its telemetry with :func:`write_jsonl`, and the trace viewer
    rebuilds the causal tree offline from the span records.
    """

    def _load(fh) -> list[Span]:
        spans: list[Span] = []
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("type") != "span":
                continue
            spans.append(
                Span(
                    name=rec["name"],
                    span_id=int(rec["span_id"]),
                    parent_id=(
                        None if rec.get("parent_id") is None
                        else int(rec["parent_id"])
                    ),
                    start=float(rec.get("start", 0.0)),
                    end=float(rec.get("end", 0.0)),
                    thread=rec.get("thread", ""),
                    attrs=dict(rec.get("attrs") or {}),
                    trace_id=rec.get("trace_id", "") or "",
                    links=tuple(
                        (t, int(s)) for t, s in rec.get("links") or []
                    ),
                )
            )
        return spans

    if hasattr(path_or_file, "read"):
        return _load(path_or_file)
    with open(path_or_file, "r", encoding="utf-8") as fh:
        return _load(fh)


def write_jsonl(
    path_or_file,
    *,
    registry: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    spans: Iterable[Span] | None = None,
) -> int:
    """Write spans then metric samples as JSON lines; returns line count."""
    registry = registry or get_registry()
    if spans is None:
        spans = (tracer or get_tracer()).finished()

    def _dump(fh: IO[str]) -> int:
        n = 0
        for rec in _span_records(spans):
            fh.write(json.dumps(rec) + "\n")
            n += 1
        for rec in _metric_records(registry):
            fh.write(json.dumps(rec) + "\n")
            n += 1
        return n

    if hasattr(path_or_file, "write"):
        return _dump(path_or_file)
    with open(path_or_file, "w", encoding="utf-8") as fh:
        return _dump(fh)
