"""repro.obs — unified observability: metrics, spans, exporters.

One substrate for every layer of the repro to publish what it
measures — the Eq. (1) byte accounting of the GPU model, per-iteration
solver residuals, and the Fig. 4 per-rank/per-resource timelines of
the distributed runtime — plus exporters that turn the recorded state
into Chrome-trace JSON (Perfetto), Prometheus text, or JSONL.

Instrumentation is **off by default** and zero-cost while off: every
hook guards on :func:`enabled`, so `simulate_spmv`/`distributed_spmv`
results and timings are bit-identical to an uninstrumented build.

Typical use::

    from repro import obs

    obs.enable()
    ...  # run workloads; layers publish as a side effect
    with open("trace.json", "w") as fh:
        obs.write_chrome_trace(fh)
    print(obs.prometheus_text())
    obs.disable()
"""

from repro.obs import profile, slo
from repro.obs.export import (
    chrome_trace,
    parse_prometheus_text,
    prometheus_text,
    read_spans_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    Summary,
    counter,
    disable,
    enable,
    enabled,
    gauge,
    get_registry,
    histogram,
    inc,
    observe,
    observe_summary,
    reset,
    set_gauge,
    summary,
)
from repro.obs.spans import (
    Span,
    SpanContext,
    Tracer,
    adopt_spans,
    annotate_current,
    attach_context,
    capture_context,
    current_span,
    current_trace,
    get_tracer,
    new_trace_id,
    record_timeline,
    reset_spans,
    span,
    trace_root,
)
from repro.obs.trace import (
    build_trace,
    find_trace_id,
    list_traces,
    render_trace,
)

__all__ = [
    # state
    "enabled",
    "enable",
    "disable",
    "reset",
    "reset_all",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "Summary",
    "MetricFamily",
    "MetricsRegistry",
    "get_registry",
    "counter",
    "gauge",
    "histogram",
    "summary",
    "inc",
    "set_gauge",
    "observe",
    "observe_summary",
    # spans / traces
    "Span",
    "SpanContext",
    "Tracer",
    "get_tracer",
    "span",
    "trace_root",
    "current_span",
    "current_trace",
    "new_trace_id",
    "capture_context",
    "attach_context",
    "adopt_spans",
    "annotate_current",
    "record_timeline",
    "reset_spans",
    "build_trace",
    "render_trace",
    "list_traces",
    "find_trace_id",
    # profiler / SLO submodules
    "profile",
    "slo",
    # export
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "parse_prometheus_text",
    "write_jsonl",
    "read_spans_jsonl",
]


def reset_all() -> None:
    """Drop all recorded metrics, spans and profiler samples
    (the enable flag is left untouched)."""
    reset()
    reset_spans()
    profile.reset_profile()
