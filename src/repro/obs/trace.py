"""Trace reconstruction: turn recorded spans back into causal trees.

A *trace* is the set of spans sharing one ``trace_id`` — everything
one request touched on its way through the stack — plus any spans it
reached through **links**: the micro-batching scheduler coalesces N
requests into one ``serve.batch`` span that lives in the *first*
request's trace and links to every request span it served, so each of
the N traces pulls the shared batch (and the kernel / rank spans
under it) into its own tree.

:func:`build_trace` assembles the tree for one id, :func:`render_trace`
draws it as ASCII for ``repro obs trace <id>``, and
:func:`list_traces` indexes every trace in a span dump (the
``repro obs trace --list`` view).  Spans come either from the live
tracer or from a JSONL artifact via
:func:`repro.obs.export.read_spans_jsonl`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import IO, Iterable

from repro.obs.spans import Span, get_tracer

__all__ = [
    "TraceNode",
    "build_trace",
    "render_trace",
    "list_traces",
    "find_trace_id",
]

#: attributes surfaced inline when rendering a span
_RENDER_ATTRS = (
    "matrix",
    "format",
    "variant",
    "rank",
    "size",
    "status",
    "degraded",
    "fault",
    "fault_site",
    "kind",
    "site",
    "gbs",
    "model_gbs",
    "gflops",
    "simulated",
)


@dataclass
class TraceNode:
    """One span plus its children in the reconstructed tree.

    ``via_link`` marks nodes attached through a cross-trace link
    (e.g. a shared batch span) rather than a parent id.
    """

    span: Span
    children: list["TraceNode"] = field(default_factory=list)
    via_link: bool = False


def _sorted_children(nodes: list[TraceNode]) -> list[TraceNode]:
    return sorted(nodes, key=lambda n: (n.span.start, n.span.span_id))


def build_trace(
    trace_id: str, spans: Iterable[Span] | None = None
) -> list[TraceNode]:
    """Reconstruct the causal tree(s) for ``trace_id``.

    Selection is two-phase.  First every span whose ``trace_id``
    matches is taken, parented by ``parent_id`` (a span whose parent
    is missing from the dump becomes a root — partial dumps degrade to
    a forest instead of failing).  Second, any span that *links* to a
    selected span — a batch span recorded under a sibling trace — is
    grafted under the linked span, and its whole descendant subtree
    (kernel spans, rank spans, injected-fault markers, regardless of
    their own trace id) comes with it.

    Returns the list of root nodes sorted by start time (normally one).
    """
    if spans is None:
        spans = get_tracer().finished()
    spans = list(spans)
    by_id: dict[int, Span] = {s.span_id: s for s in spans}
    kids_of: dict[int | None, list[Span]] = defaultdict(list)
    for s in spans:
        kids_of[s.parent_id].append(s)

    selected = [s for s in spans if s.trace_id == trace_id]
    selected_ids = {s.span_id for s in selected}
    nodes: dict[int, TraceNode] = {s.span_id: TraceNode(s) for s in selected}

    def graft_subtree(root_span: Span, via_link: bool) -> TraceNode:
        """Materialise root_span + all descendants (any trace id)."""
        node = nodes.get(root_span.span_id)
        if node is None:
            node = nodes[root_span.span_id] = TraceNode(
                root_span, via_link=via_link
            )
        stack = [node]
        while stack:
            cur = stack.pop()
            for child in kids_of.get(cur.span.span_id, ()):
                if child.span_id in {n.span.span_id for n in cur.children}:
                    continue
                cnode = nodes.get(child.span_id)
                if cnode is None:
                    cnode = nodes[child.span_id] = TraceNode(child)
                if cnode not in cur.children:
                    cur.children.append(cnode)
                    stack.append(cnode)
        return node

    # linked spans (shared batches from sibling traces) graft under the
    # span they link to; their descendants come along
    for s in spans:
        if s.span_id in selected_ids or not s.links:
            continue
        for t, linked_id in s.links:
            if t == trace_id and linked_id in nodes:
                sub = graft_subtree(s, via_link=True)
                if sub not in nodes[linked_id].children:
                    nodes[linked_id].children.append(sub)

    # wire parent links among selected spans
    roots: list[TraceNode] = []
    for s in selected:
        node = nodes[s.span_id]
        parent = (
            nodes.get(s.parent_id) if s.parent_id in selected_ids else None
        )
        if parent is not None:
            if node not in parent.children:
                parent.children.append(node)
        elif s.parent_id in by_id and by_id[s.parent_id].trace_id == trace_id:
            # parent selected but node list missed it: defensive, cannot
            # happen with consistent input
            roots.append(node)  # pragma: no cover
        else:
            roots.append(node)

    def sort_rec(node: TraceNode) -> None:
        node.children = _sorted_children(node.children)
        for c in node.children:
            sort_rec(c)

    roots = _sorted_children(roots)
    for r in roots:
        sort_rec(r)
    return roots


def _describe(sp: Span) -> str:
    bits = []
    for key in _RENDER_ATTRS:
        if key in sp.attrs:
            v = sp.attrs[key]
            if isinstance(v, float):
                v = f"{v:.3g}"
            bits.append(f"{key}={v}")
    dur_ms = max(sp.end - sp.start, 0.0) * 1e3
    desc = f"{sp.name}  [{dur_ms:.3f} ms]"
    if bits:
        desc += "  " + " ".join(bits)
    return desc


def render_trace(
    trace_id: str,
    spans: Iterable[Span] | None = None,
    *,
    out: IO[str] | None = None,
) -> str:
    """ASCII tree for one trace (the ``repro obs trace <id>`` view)."""
    roots = build_trace(trace_id, spans)
    lines = [f"trace {trace_id}"]
    if not roots:
        lines.append("  (no spans recorded for this trace)")

    def walk(node: TraceNode, prefix: str, is_last: bool) -> None:
        branch = "`-" if is_last else "|-"
        marker = "~" if node.via_link else ""
        lines.append(f"{prefix}{branch} {marker}{_describe(node.span)}")
        child_prefix = prefix + ("   " if is_last else "|  ")
        for i, child in enumerate(node.children):
            walk(child, child_prefix, i == len(node.children) - 1)

    for i, root in enumerate(roots):
        walk(root, "", i == len(roots) - 1)
    text = "\n".join(lines)
    if out is not None:
        out.write(text + "\n")
    return text


def list_traces(spans: Iterable[Span] | None = None) -> list[dict]:
    """Index of every trace in a span set, newest first.

    Each entry: ``{"trace_id", "root", "spans", "start", "duration_s",
    "faults"}`` — enough for a one-line-per-trace listing.
    """
    if spans is None:
        spans = get_tracer().finished()
    groups: dict[str, list[Span]] = defaultdict(list)
    for s in spans:
        if s.trace_id:
            groups[s.trace_id].append(s)
    out = []
    for tid, group in groups.items():
        group.sort(key=lambda s: (s.start, s.span_id))
        ids = {s.span_id for s in group}
        roots = [s for s in group if s.parent_id not in ids]
        root_name = roots[0].name if roots else group[0].name
        start = min(s.start for s in group)
        end = max(s.end for s in group)
        faults = sum(
            1 for s in group if s.name in ("fault.injected", "fault.applied")
        )
        out.append(
            {
                "trace_id": tid,
                "root": root_name,
                "spans": len(group),
                "start": start,
                "duration_s": max(end - start, 0.0),
                "faults": faults,
            }
        )
    out.sort(key=lambda e: e["start"], reverse=True)
    return out


def find_trace_id(
    prefix: str, spans: Iterable[Span] | None = None
) -> str:
    """Resolve a (possibly abbreviated) trace id against a span set.

    Accepts any unique prefix, so ``repro obs trace 3fa9`` works.
    Raises ``KeyError`` when nothing matches, ``ValueError`` when the
    prefix is ambiguous.
    """
    if spans is None:
        spans = get_tracer().finished()
    ids = {s.trace_id for s in spans if s.trace_id}
    if prefix in ids:
        return prefix
    matches = sorted(t for t in ids if t.startswith(prefix))
    if not matches:
        raise KeyError(f"no trace with id (or prefix) {prefix!r}")
    if len(matches) > 1:
        raise ValueError(
            f"trace id prefix {prefix!r} is ambiguous: {', '.join(matches)}"
        )
    return matches[0]
