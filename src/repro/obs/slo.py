"""Declarative SLOs with sliding-window burn-rate evaluation.

ROADMAP item 1 (a sharded serve fleet with an autoscaler) needs a
signal saying *"the service is eating its error budget too fast"* —
not a raw metric.  This module turns the metrics the serve stack
already publishes (the ``serve_request_seconds`` :class:`Summary`,
the ``serve_requests_total`` status counters, the
``serve_queue_depth`` gauge) into that signal:

* :class:`SLOSpec` declares one objective — a p99 latency bound, an
  error-rate bound, or a queue-depth bound — plus the **budget**: the
  fraction of time the objective is allowed to be violated.
* :class:`SLOMonitor` samples each spec on :meth:`~SLOMonitor.tick`
  (call it from a scrape handler, a test, or the built-in background
  thread) and maintains two sliding windows per spec.  The **burn
  rate** over a window is ``violating_fraction / budget`` — the
  classic multi-window alerting rule: 1.0 means the budget is being
  consumed exactly as provisioned; an alert fires only when *both*
  the fast and the slow window burn past the threshold (fast window
  rejects stale alerts, slow window rejects blips).
* Alert transitions (``firing`` / ``resolved``) append to a bounded
  event stream — :meth:`SLOMonitor.events` — which a future fleet
  autoscaler consumes; :meth:`SLOMonitor.state` is the JSON payload
  behind the server's ``/sloz`` endpoint and the ``slo`` section of
  ``/statz``.

The monitor reads only public registry state, so it works against any
process that publishes the serve metrics — including offline replays
in tests, where a fake ``clock`` makes burn windows deterministic.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.obs import metrics as _metrics

__all__ = [
    "SLOSpec",
    "SLOMonitor",
    "default_serve_slos",
    "default_fleet_slos",
]

_KINDS = ("latency_p99", "error_rate", "queue_depth")


@dataclass(frozen=True)
class SLOSpec:
    """One service-level objective.

    ``objective`` is the bound on the observed value: seconds for
    ``latency_p99``, a fraction for ``error_rate``, a depth for
    ``queue_depth``.  ``budget`` is the fraction of samples allowed to
    violate the bound before the burn rate exceeds 1.
    """

    name: str
    kind: str
    objective: float
    metric: str
    #: restrict to children whose labels contain these pairs
    labels: dict = field(default_factory=dict)
    #: error_rate only: children carrying these labels count as good
    good_labels: dict = field(default_factory=lambda: {"status": "ok"})
    budget: float = 0.01
    window_s: float = 60.0
    fast_window_s: float = 5.0
    burn_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.objective < 0:
            raise ValueError(f"objective must be >= 0, got {self.objective}")
        if not 0.0 < self.budget <= 1.0:
            raise ValueError(f"budget must be in (0, 1], got {self.budget}")
        if self.fast_window_s <= 0 or self.window_s < self.fast_window_s:
            raise ValueError(
                "need 0 < fast_window_s <= window_s, got "
                f"{self.fast_window_s} / {self.window_s}"
            )


def default_serve_slos(
    *,
    p99_latency_s: float = 0.5,
    error_budget: float = 0.05,
    max_queue_depth: float = 64,
    window_s: float = 60.0,
    fast_window_s: float = 5.0,
) -> list[SLOSpec]:
    """The stock objectives for one serve process (used by ``repro serve --slo``)."""
    return [
        SLOSpec(
            name="latency-p99",
            kind="latency_p99",
            objective=p99_latency_s,
            metric="serve_request_seconds",
            budget=0.05,
            window_s=window_s,
            fast_window_s=fast_window_s,
        ),
        SLOSpec(
            name="error-rate",
            kind="error_rate",
            objective=error_budget,
            metric="serve_requests_total",
            budget=0.05,
            window_s=window_s,
            fast_window_s=fast_window_s,
        ),
        SLOSpec(
            name="queue-depth",
            kind="queue_depth",
            objective=max_queue_depth,
            metric="serve_queue_depth",
            budget=0.10,
            window_s=window_s,
            fast_window_s=fast_window_s,
        ),
    ]


def default_fleet_slos(
    *,
    p99_latency_s: float = 0.5,
    error_budget: float = 0.05,
    max_queue_depth: float = 64,
    window_s: float = 60.0,
    fast_window_s: float = 5.0,
) -> list[SLOSpec]:
    """The stock objectives for a fleet router (``repro serve --fleet --slo``).

    Same three signals as :func:`default_serve_slos`, read from the
    fleet-level metrics the :class:`~repro.serve.router.FleetRouter`
    publishes: end-to-end scatter/gather latency, router request
    status (``ok`` is good; ``degraded``/``partial``/``error`` burn
    the budget), and the worst per-shard queue depth.
    """
    return [
        SLOSpec(
            name="fleet-latency-p99",
            kind="latency_p99",
            objective=p99_latency_s,
            metric="fleet_request_seconds",
            budget=0.05,
            window_s=window_s,
            fast_window_s=fast_window_s,
        ),
        SLOSpec(
            name="fleet-error-rate",
            kind="error_rate",
            objective=error_budget,
            metric="fleet_requests_total",
            budget=0.05,
            window_s=window_s,
            fast_window_s=fast_window_s,
        ),
        SLOSpec(
            name="fleet-queue-depth",
            kind="queue_depth",
            objective=max_queue_depth,
            metric="fleet_queue_depth",
            budget=0.10,
            window_s=window_s,
            fast_window_s=fast_window_s,
        ),
    ]


def _labels_match(child_labels: dict, want: dict) -> bool:
    return all(str(child_labels.get(k)) == str(v) for k, v in want.items())


class _SpecState:
    """Sliding sample window + alert latch for one spec."""

    __slots__ = ("spec", "samples", "firing", "last_value", "last_counts")

    def __init__(self, spec: SLOSpec):
        self.spec = spec
        #: (t, violating: bool) samples, pruned to window_s
        self.samples: deque[tuple[float, bool]] = deque()
        self.firing = False
        self.last_value: float = math.nan
        #: error_rate only: cumulative (good, total) at the last tick
        self.last_counts: tuple[float, float] | None = None

    def prune(self, now: float) -> None:
        horizon = now - self.spec.window_s
        while self.samples and self.samples[0][0] < horizon:
            self.samples.popleft()

    def burn(self, now: float, window_s: float) -> float:
        horizon = now - window_s
        total = bad = 0
        for t, violating in self.samples:
            if t >= horizon:
                total += 1
                bad += violating
        if total == 0:
            return 0.0
        return (bad / total) / self.spec.budget


class SLOMonitor:
    """Evaluates a set of :class:`SLOSpec` against the metrics registry."""

    def __init__(
        self,
        specs: list[SLOSpec] | None = None,
        *,
        registry=None,
        clock=time.monotonic,
        max_events: int = 256,
    ):
        self._registry = registry
        self._clock = clock
        self._states = {s.name: _SpecState(s) for s in (specs or [])}
        self._events: deque[dict] = deque(maxlen=max_events)
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.ticks = 0

    # -- configuration -----------------------------------------------------

    def add(self, spec: SLOSpec) -> None:
        with self._lock:
            if spec.name in self._states:
                raise ValueError(f"SLO {spec.name!r} already registered")
            self._states[spec.name] = _SpecState(spec)

    def specs(self) -> list[SLOSpec]:
        with self._lock:
            return [st.spec for st in self._states.values()]

    # -- sampling ----------------------------------------------------------

    def _reg(self):
        return self._registry or _metrics.get_registry()

    def _observe(self, st: _SpecState) -> float:
        """Current value of one spec's signal (NaN = no data)."""
        spec = st.spec
        fam = self._reg().get(spec.metric)
        if fam is None:
            return math.nan
        if spec.kind == "latency_p99":
            worst = math.nan
            for labels, child in fam.samples():
                if not _labels_match(labels, spec.labels):
                    continue
                q = child.quantile(0.99)
                if not math.isnan(q) and (math.isnan(worst) or q > worst):
                    worst = q
            return worst
        if spec.kind == "queue_depth":
            worst = math.nan
            for labels, child in fam.samples():
                if not _labels_match(labels, spec.labels):
                    continue
                v = float(child.value)
                if math.isnan(worst) or v > worst:
                    worst = v
            return worst
        # error_rate: 1 - good/total over the delta since the last tick,
        # so the signal tracks *current* traffic, not lifetime history
        good = total = 0.0
        for labels, child in fam.samples():
            if not _labels_match(labels, spec.labels):
                continue
            v = float(child.value)
            total += v
            if _labels_match(labels, spec.good_labels):
                good += v
        if st.last_counts is None:
            st.last_counts = (good, total)
            return math.nan
        dg = good - st.last_counts[0]
        dt = total - st.last_counts[1]
        st.last_counts = (good, total)
        if dt <= 0:
            return math.nan
        return 1.0 - dg / dt

    def tick(self, now: float | None = None) -> dict:
        """Sample every spec once; returns the post-tick :meth:`state`.

        Call at scrape cadence (the background thread does exactly
        this).  A NaN observation — metric absent, empty window, no
        new traffic — contributes a *non-violating* sample: silence is
        treated as health, so an idle server never pages.
        """
        now = self._clock() if now is None else now
        with self._lock:
            self.ticks += 1
            for st in self._states.values():
                value = self._observe(st)
                st.last_value = value
                violating = (not math.isnan(value)) and value > st.spec.objective
                st.samples.append((now, violating))
                st.prune(now)
                fast = st.burn(now, st.spec.fast_window_s)
                slow = st.burn(now, st.spec.window_s)
                should_fire = (
                    fast >= st.spec.burn_threshold
                    and slow >= st.spec.burn_threshold
                )
                if should_fire != st.firing:
                    st.firing = should_fire
                    self._events.append(
                        {
                            "type": "slo_alert",
                            "slo": st.spec.name,
                            "state": "firing" if should_fire else "resolved",
                            "value": None if math.isnan(value) else value,
                            "objective": st.spec.objective,
                            "burn_fast": fast,
                            "burn_slow": slow,
                            "t": now,
                        }
                    )
                    if _metrics.enabled():
                        _metrics.get_registry().counter(
                            "slo_alerts_total",
                            "SLO alert state transitions",
                        ).inc(
                            1,
                            slo=st.spec.name,
                            state="firing" if should_fire else "resolved",
                        )
            return self._state_locked(now)

    # -- background evaluation --------------------------------------------

    def start(self, interval_s: float = 1.0) -> None:
        """Evaluate on a daemon thread every ``interval_s`` seconds."""
        if self._thread is not None:
            return

        def loop() -> None:
            while not self._stop.wait(interval_s):
                self.tick()

        self._stop.clear()
        self._thread = threading.Thread(
            target=loop, name="slo-monitor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    # -- reporting ---------------------------------------------------------

    def _state_locked(self, now: float) -> dict:
        slos = []
        for st in self._states.values():
            slos.append(
                {
                    "name": st.spec.name,
                    "kind": st.spec.kind,
                    "objective": st.spec.objective,
                    "metric": st.spec.metric,
                    "budget": st.spec.budget,
                    "value": (
                        None if math.isnan(st.last_value) else st.last_value
                    ),
                    "burn_fast": st.burn(now, st.spec.fast_window_s),
                    "burn_slow": st.burn(now, st.spec.window_s),
                    "window_s": st.spec.window_s,
                    "fast_window_s": st.spec.fast_window_s,
                    "firing": st.firing,
                    "samples": len(st.samples),
                }
            )
        return {
            "ticks": self.ticks,
            "firing": sorted(s["name"] for s in slos if s["firing"]),
            "slos": slos,
            "events": list(self._events)[-16:],
        }

    def state(self) -> dict:
        """JSON-friendly snapshot (the ``/sloz`` payload)."""
        now = self._clock()
        with self._lock:
            return self._state_locked(now)

    def events(self, *, drain: bool = False) -> list[dict]:
        """The alert event stream (autoscaler feed); optionally drain it."""
        with self._lock:
            out = list(self._events)
            if drain:
                self._events.clear()
            return out

    def firing(self) -> list[str]:
        with self._lock:
            return sorted(
                st.spec.name for st in self._states.values() if st.firing
            )
