"""Process-wide labeled metrics registry (counters, gauges, histograms).

The paper's argument is quantitative — Eq. (1) code balance, the
Eq. (2) kernel/PCIe split, Fig. 4 resource timelines — so the repro
needs a uniform place where every layer (GPU model, solvers,
distributed runtime) can publish numbers that exporters then turn
into Prometheus text or JSONL (:mod:`repro.obs.export`).

Design notes
------------

* **Zero cost when disabled.**  Instrumentation sites guard on
  :func:`enabled` (a module-level flag read); when ``False`` nothing
  is allocated, no lock is taken and behaviour is bit-identical to an
  uninstrumented build.  The flag defaults to *off*.
* **Labels.**  A metric *family* (one name + help + kind) owns
  *children* keyed by sorted ``(label, value)`` tuples — the
  Prometheus data model (``spmv_bytes_total{format="pJDS"}``).
* **Histograms are log-bucketed.**  Observations land in buckets with
  upper bounds ``growth ** k`` for integer ``k`` (default growth 2),
  allocated lazily, so one histogram covers nanoseconds to hours
  without preconfigured boundaries.

Everything is thread-safe: the threaded ranks of
:mod:`repro.distributed.runtime` publish concurrently.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "enabled",
    "enable",
    "disable",
    "reset",
    "Counter",
    "Gauge",
    "Histogram",
    "Summary",
    "MetricFamily",
    "MetricsRegistry",
    "get_registry",
    "counter",
    "gauge",
    "histogram",
    "summary",
    "inc",
    "set_gauge",
    "observe",
    "observe_summary",
]

# ---------------------------------------------------------------------------
# global enable flag — the zero-cost fast path
# ---------------------------------------------------------------------------

_enabled: bool = False


def enabled() -> bool:
    """True when instrumentation is recording (cheap; safe in hot loops)."""
    return _enabled


def enable() -> None:
    """Turn instrumentation on (metrics *and* spans record from now on)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn instrumentation off; instrumented code reverts to no-ops."""
    global _enabled
    _enabled = False


# ---------------------------------------------------------------------------
# metric children
# ---------------------------------------------------------------------------

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """Monotonically increasing value (``*_total`` convention)."""

    labels: dict[str, str] = field(default_factory=dict)
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """Instantaneous value that may go up or down (e.g. a residual)."""

    labels: dict[str, str] = field(default_factory=dict)
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Log-bucketed histogram: bucket ``k`` counts ``v <= growth**k``.

    ``observe(v)`` places ``v`` in the bucket with the smallest integer
    exponent ``k`` such that ``v <= growth**k`` (zero and negative
    observations land in a dedicated underflow bucket rendered as the
    smallest finite bound).  Buckets are created lazily, so the
    exposition only carries bounds that were actually hit.
    """

    def __init__(self, labels: dict[str, str] | None = None, growth: float = 2.0):
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        self.labels = labels or {}
        self.growth = growth
        self._counts: dict[int, int] = {}  # exponent -> count
        self._underflow = 0  # v <= 0 observations
        self.sum = 0.0
        self.count = 0

    def bucket_exponent(self, value: float) -> int:
        """Smallest integer ``k`` with ``value <= growth**k``."""
        k = math.ceil(math.log(value, self.growth))
        # guard against float fuzz at exact boundaries: log_2(8.0) can
        # come out as 2.9999999999999996 -> ceil 3 (correct) or
        # 3.0000000000000004 -> ceil 4 (one bucket too high)
        while k > 0 and value <= self.growth ** (k - 1):
            k -= 1
        while value > self.growth ** k:
            k += 1
        return k

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        if value <= 0.0:
            self._underflow += 1
            return
        k = self.bucket_exponent(value)
        self._counts[k] = self._counts.get(k, 0) + 1

    def buckets(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending at +Inf."""
        out: list[tuple[float, int]] = []
        running = self._underflow
        exponents = sorted(self._counts)
        if self._underflow and exponents:
            # render the underflow under the smallest finite bound
            lowest = min(exponents[0] - 1, -1)
            out.append((self.growth ** lowest, running))
        elif self._underflow:
            out.append((self.growth ** -1, running))
        for k in exponents:
            running += self._counts[k]
            out.append((self.growth ** k, running))
        out.append((math.inf, self.count))
        return out

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise RuntimeError("no observations recorded")
        return self.sum / self.count


#: default quantiles exposed by :class:`Summary` (the /statz trio)
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


class Summary:
    """Sliding-window quantile summary (p50/p95/p99 over recent values).

    Unlike :class:`Histogram` (cumulative log buckets, unbounded
    history), a summary answers "what is the p99 request latency *right
    now*": quantiles are computed over the last ``window`` observations
    only, so a traffic spike ages out instead of being diluted forever.
    ``sum``/``count`` stay cumulative (Prometheus summary semantics).

    ``quantile(q)`` uses the nearest-rank method on a snapshot of the
    window — O(window log window) per call, intended for scrape/statz
    cadence, not hot loops.  Thread-safe: observations append to a
    bounded deque; readers sort a snapshot.
    """

    def __init__(
        self,
        labels: dict[str, str] | None = None,
        *,
        window: int = 1024,
        quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
    ):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        for q in quantiles:
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"quantiles must be in [0, 1], got {q}")
        self.labels = labels or {}
        self.window = window
        self.quantiles = tuple(quantiles)
        self._recent: deque[float] = deque(maxlen=window)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        self._recent.append(value)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the current window (NaN when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        data = sorted(self._recent)
        if not data:
            return math.nan
        rank = max(int(math.ceil(q * len(data))) - 1, 0)
        return data[rank]

    def snapshot(self) -> dict[float, float]:
        """All configured quantiles in one sorted pass."""
        data = sorted(self._recent)
        out: dict[float, float] = {}
        for q in self.quantiles:
            if not data:
                out[q] = math.nan
            else:
                out[q] = data[max(int(math.ceil(q * len(data))) - 1, 0)]
        return out

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise RuntimeError("no observations recorded")
        return self.sum / self.count


_KINDS = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
    "summary": Summary,
}


# ---------------------------------------------------------------------------
# families and the registry
# ---------------------------------------------------------------------------


class MetricFamily:
    """One metric name with help text, a kind, and labeled children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        growth: float = 2.0,
        window: int = 1024,
        quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
    ):
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {sorted(_KINDS)}, got {kind!r}")
        _validate_name(name)
        self.name = name
        self.kind = kind
        self.help = help
        self.growth = growth
        self.window = window
        self.quantiles = tuple(quantiles)
        self._children: dict[LabelKey, Counter | Gauge | Histogram | Summary] = {}
        self._lock = threading.Lock()

    def labels(self, **labels: str):
        """The child for this label set, created on first use."""
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    kw = dict(key)
                    if self.kind == "histogram":
                        child = Histogram(kw, growth=self.growth)
                    elif self.kind == "summary":
                        child = Summary(
                            kw, window=self.window, quantiles=self.quantiles
                        )
                    else:
                        child = _KINDS[self.kind](kw)
                    self._children[key] = child
        return child

    def samples(
        self,
    ) -> list[tuple[dict[str, str], "Counter | Gauge | Histogram | Summary"]]:
        """``(labels, child)`` pairs in deterministic (sorted-key) order."""
        with self._lock:
            return [(dict(k), c) for k, c in sorted(self._children.items())]

    # conveniences so instrumentation sites stay one-liners
    def inc(self, amount: float = 1.0, **labels: str) -> None:
        self.labels(**labels).inc(amount)

    def set(self, value: float, **labels: str) -> None:
        self.labels(**labels).set(value)

    def observe(self, value: float, **labels: str) -> None:
        self.labels(**labels).observe(value)


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise ValueError(f"metric name must not start with a digit: {name!r}")


class MetricsRegistry:
    """Collection of metric families; one process-wide default exists.

    ``generation`` counts :meth:`clear` calls.  Hot-path
    instrumentation (e.g. the engine's per-handle cached counter
    children) keys its cache on the generation so a ``reset()`` —
    common in tests — invalidates the cache instead of leaving
    increments flowing into orphaned children.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()
        self.generation = 0

    def _family(self, name: str, kind: str, help: str, **kw) -> MetricFamily:
        fam = self._families.get(name)
        if fam is None:
            with self._lock:
                fam = self._families.get(name)
                if fam is None:
                    fam = MetricFamily(name, kind, help, **kw)
                    self._families[name] = fam
        if fam.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {fam.kind}, not {kind}"
            )
        if help and not fam.help:
            fam.help = help
        return fam

    def counter(self, name: str, help: str = "") -> MetricFamily:
        return self._family(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> MetricFamily:
        return self._family(name, "gauge", help)

    def histogram(
        self, name: str, help: str = "", *, growth: float = 2.0
    ) -> MetricFamily:
        return self._family(name, "histogram", help, growth=growth)

    def summary(
        self,
        name: str,
        help: str = "",
        *,
        window: int = 1024,
        quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
    ) -> MetricFamily:
        return self._family(
            name, "summary", help, window=window, quantiles=quantiles
        )

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return [self._families[n] for n in sorted(self._families)]

    def get(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    def clear(self) -> None:
        with self._lock:
            self._families.clear()
            self.generation += 1


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry used by all instrumentation."""
    return _default_registry


def reset() -> None:
    """Drop all recorded metrics (the enable flag is left untouched)."""
    _default_registry.clear()


# module-level shortcuts against the default registry ----------------------


def counter(name: str, help: str = "") -> MetricFamily:
    return _default_registry.counter(name, help)


def gauge(name: str, help: str = "") -> MetricFamily:
    return _default_registry.gauge(name, help)


def histogram(name: str, help: str = "", *, growth: float = 2.0) -> MetricFamily:
    return _default_registry.histogram(name, help, growth=growth)


def summary(
    name: str,
    help: str = "",
    *,
    window: int = 1024,
    quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
) -> MetricFamily:
    return _default_registry.summary(
        name, help, window=window, quantiles=quantiles
    )


def inc(name: str, amount: float = 1.0, **labels: str) -> None:
    """Increment a counter in the default registry (no-op when disabled)."""
    if _enabled:
        _default_registry.counter(name).inc(amount, **labels)


def set_gauge(name: str, value: float, **labels: str) -> None:
    """Set a gauge in the default registry (no-op when disabled)."""
    if _enabled:
        _default_registry.gauge(name).set(value, **labels)


def observe(name: str, value: float, **labels: str) -> None:
    """Observe into a histogram in the default registry (no-op when disabled)."""
    if _enabled:
        _default_registry.histogram(name).observe(value, **labels)


def observe_summary(name: str, value: float, **labels: str) -> None:
    """Observe into a summary in the default registry (no-op when disabled)."""
    if _enabled:
        _default_registry.summary(name).observe(value, **labels)
