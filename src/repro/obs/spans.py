"""Lightweight span tracer with trace IDs and cross-thread propagation.

A *span* is one named, timed section of work with a parent — the unit
Chrome's trace viewer and Perfetto draw as a box on a track.  Every
span also belongs to exactly one **trace**: the causal tree of a
single request as it crosses the serve → engine → distributed
boundary.  A root span (no parent on its thread) starts a fresh trace;
children inherit the trace of their parent.  Front-ends (the HTTP
handler, :class:`repro.serve.client.Client`, the CLI) open the trace
root, and :mod:`repro.obs.trace` reconstructs the whole tree from the
recorded spans — ``repro obs trace <id>`` renders it.

Propagation must survive two kinds of hop:

* **threads** — the distributed runtime runs one Python thread per
  rank and the serve scheduler executes batches on worker threads.
  The driver captures a :class:`SpanContext` (span id *and* trace id)
  and each worker *attaches* it before opening its own child spans.
  Thread-local stacks keep concurrent workers from seeing each
  other's current span.
* **processes** — the multiprocessing backend pickles the
  :class:`SpanContext` into forked rank workers.  Workers record
  spans into their own (forked) tracer and ship the finished spans
  back over the result queue; the driver re-ingests them with
  :meth:`Tracer.adopt`, which remaps worker-local span ids onto the
  driver's id space while keeping parent links (including the link to
  the driver's root span) intact.

Spans can additionally carry **links** — ``(trace_id, span_id)``
pairs pointing at causally related spans in *other* traces.  The
micro-batching scheduler uses links to tie one ``serve.batch`` span to
the N request spans it coalesced: the batch span lives in the first
request's trace and links to every request span, so each request's
trace tree can pull the shared batch (and the kernel spans under it)
into its own rendering.

The simulated execution modes (Fig. 4) don't run in real time; their
:class:`~repro.distributed.events.Timeline` intervals are bridged into
synthetic spans by :func:`record_timeline`, so simulated and real runs
share one export path (:mod:`repro.obs.export`).

Everything is a no-op while :func:`repro.obs.metrics.enabled` is
false: :meth:`Tracer.span` then yields a shared null span without
allocating or locking.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable

from repro.obs import metrics as _metrics

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "get_tracer",
    "span",
    "trace_root",
    "current_span",
    "current_trace",
    "new_trace_id",
    "capture_context",
    "attach_context",
    "adopt_spans",
    "annotate_current",
    "record_timeline",
    "reset_spans",
]


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (process- and host-unique)."""
    return uuid.uuid4().hex[:16]


@dataclass
class Span:
    """One timed, named section of work inside one trace."""

    name: str
    span_id: int
    parent_id: int | None
    start: float  # seconds on the tracer clock
    end: float = 0.0
    thread: str = ""
    attrs: dict[str, object] = field(default_factory=dict)
    #: trace this span belongs to ("" only for legacy/foreign spans)
    trace_id: str = ""
    #: causal links into other traces: ``((trace_id, span_id), ...)``
    links: tuple = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    def set_attr(self, key: str, value: object) -> "Span":
        self.attrs[key] = value
        return self


@dataclass(frozen=True)
class SpanContext:
    """Immutable handle to a span + trace, safe to hand to another
    thread or to pickle into a worker process."""

    span_id: int | None
    trace_id: str | None = None


class _NullSpan:
    """Shared do-nothing span yielded while instrumentation is off."""

    __slots__ = ()
    name = ""
    span_id = None
    parent_id = None
    trace_id = ""
    links: tuple = ()
    attrs: dict[str, object] = {}

    def set_attr(self, key: str, value: object) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans; one process-wide default exists."""

    def __init__(self) -> None:
        self._finished: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)
        #: currently open spans by id (for victim annotation by the
        #: fault injector and cross-thread attribute writes)
        self._open: dict[int, Span] = {}
        self.clock = time.perf_counter

    # -- thread-local current-span stack ----------------------------------
    # entries are (span_id | None, trace_id | None, Span | None): locally
    # opened spans carry their object, attached foreign contexts don't.

    def _stack(self) -> list[tuple[int | None, str | None, Span | None]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> int | None:
        """span_id of the innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1][0] if stack else None

    def current_trace(self) -> str | None:
        """trace_id active on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1][1] if stack else None

    def current_open(self) -> Span | None:
        """The innermost *reachable* open Span object on this thread.

        Walks past attached foreign contexts: an attached span opened
        by another thread of this process is found through the open-
        span table, so the fault injector can annotate the victim even
        from a helper thread.  Returns ``None`` when nothing is open.
        """
        stack = getattr(self._local, "stack", None)
        if not stack:
            return None
        for sid, _tid, sp in reversed(stack):
            if sp is not None:
                return sp
            if sid is not None:
                with self._lock:
                    found = self._open.get(sid)
                if found is not None:
                    return found
        return None

    # -- recording --------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: object):
        """Open a child span of this thread's current span.

        A span opened with no current span becomes a **trace root**
        with a fresh trace id; children inherit the parent's trace.
        No-op (yields a shared null span) when instrumentation is
        disabled — the fast path takes one global read and one branch.
        """
        if not _metrics.enabled():
            yield _NULL_SPAN
            return
        stack = self._stack()
        if stack:
            parent, trace, _ = stack[-1]
        else:
            parent, trace = None, None
        if trace is None:
            trace = new_trace_id()
        with self._lock:
            sid = next(self._ids)
        sp = Span(
            name=name,
            span_id=sid,
            parent_id=parent,
            start=self.clock(),
            thread=threading.current_thread().name,
            attrs=dict(attrs),
            trace_id=trace,
        )
        stack.append((sid, trace, sp))
        with self._lock:
            self._open[sid] = sp
        try:
            yield sp
        finally:
            sp.end = self.clock()
            stack.pop()
            with self._lock:
                self._open.pop(sid, None)
                self._finished.append(sp)

    @contextmanager
    def attach(self, ctx: SpanContext):
        """Adopt ``ctx`` as this thread's current span (cross-thread link).

        Rank workers call this with the context captured by the driver
        so their ``rank.*`` spans parent under the ``distributed_spmv``
        root — and land in the driver's trace — even though they run on
        different threads (or in forked processes).  A context with a
        trace id but no span id starts children as roots *of that
        trace* (the front-end handed out the id before any span
        existed).
        """
        if not _metrics.enabled() or (ctx.span_id is None and ctx.trace_id is None):
            yield
            return
        stack = self._stack()
        stack.append((ctx.span_id, ctx.trace_id, None))
        try:
            yield
        finally:
            stack.pop()

    @contextmanager
    def trace_root(self, name: str, *, trace_id: str | None = None, **attrs):
        """Open a root span of a (possibly caller-supplied) trace.

        The HTTP front-end uses this to honour an ``X-Trace-Id``
        request header; with ``trace_id=None`` a fresh id is minted.
        """
        if not _metrics.enabled():
            yield _NULL_SPAN
            return
        with self.attach(SpanContext(None, trace_id or new_trace_id())):
            with self.span(name, **attrs) as sp:
                yield sp

    def context(self) -> SpanContext:
        """Capture the current span + trace for another thread/process."""
        return SpanContext(self.current(), self.current_trace())

    def add_finished(self, sp: Span) -> None:
        """Record an externally built (e.g. synthetic) finished span."""
        with self._lock:
            self._finished.append(sp)

    def isolate_forked(self) -> None:
        """Reset this tracer inside a freshly forked worker.

        Fork copies the driver's finished spans and open-span table;
        both are the driver's to report, so they are dropped.  The id
        counter is moved to a pid-salted range so the ids of spans the
        worker ships home can never collide with driver-side ids —
        :meth:`adopt` relies on that to tell an in-batch parent from a
        cross-process one.
        """
        import os

        with self._lock:
            self._finished.clear()
            self._open.clear()
        self._ids = itertools.count(((os.getpid() & 0xFFFF) + 1) << 32)

    def adopt(self, spans: Iterable[Span]) -> int:
        """Ingest spans recorded by another process's tracer.

        Worker-local span ids are remapped onto this tracer's id space
        (the forked worker's counter overlaps the driver's); parent
        links *within* the adopted batch are rewritten through the same
        map, while parents outside the batch — the driver span id the
        worker attached via a pickled :class:`SpanContext` — are kept
        verbatim, preserving the cross-process parent link.  Returns
        the number of spans adopted.
        """
        spans = list(spans)
        if not spans:
            return 0
        mapping: dict[int, int] = {}
        with self._lock:
            for sp in spans:
                mapping[sp.span_id] = next(self._ids)
        for sp in spans:
            sp.span_id = mapping[sp.span_id]
            if sp.parent_id in mapping:
                sp.parent_id = mapping[sp.parent_id]
            if sp.links:
                sp.links = tuple(
                    (t, mapping.get(s, s)) for t, s in sp.links
                )
            self.add_finished(sp)
        return len(spans)

    def annotate(self, **attrs: object) -> bool:
        """Set attributes on the innermost reachable open span.

        The fault injector uses this to mark the *victim* span of an
        injected fault.  Returns False when nothing is open (or
        instrumentation is off) — annotation is best-effort.
        """
        if not _metrics.enabled():
            return False
        sp = self.current_open()
        if sp is None:
            return False
        for k, v in attrs.items():
            sp.set_attr(k, v)
        return True

    def next_id(self) -> int:
        with self._lock:
            return next(self._ids)

    # -- inspection -------------------------------------------------------

    def finished(self) -> list[Span]:
        """Snapshot of all finished spans, in completion order."""
        with self._lock:
            return list(self._finished)

    def find(self, name: str) -> list[Span]:
        return [s for s in self.finished() if s.name == name]

    def reset(self) -> None:
        with self._lock:
            self._finished.clear()


_default_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer used by all instrumentation."""
    return _default_tracer


def span(name: str, **attrs: object):
    """``with obs.span("rank.spmv", rank=3): ...`` on the default tracer."""
    return _default_tracer.span(name, **attrs)


def trace_root(name: str, *, trace_id: str | None = None, **attrs: object):
    """Open a trace-root span (optionally with a caller-supplied id)."""
    return _default_tracer.trace_root(name, trace_id=trace_id, **attrs)


def current_span() -> int | None:
    return _default_tracer.current()


def current_trace() -> str | None:
    return _default_tracer.current_trace()


def capture_context() -> SpanContext:
    return _default_tracer.context()


def attach_context(ctx: SpanContext):
    return _default_tracer.attach(ctx)


def adopt_spans(spans: Iterable[Span]) -> int:
    return _default_tracer.adopt(spans)


def annotate_current(**attrs: object) -> bool:
    return _default_tracer.annotate(**attrs)


def reset_spans() -> None:
    _default_tracer.reset()


# ---------------------------------------------------------------------------
# Timeline -> spans bridge (simulated runs share the real export path)
# ---------------------------------------------------------------------------


def record_timeline(
    timeline,
    *,
    root_name: str = "distributed_spmv",
    tracer: Tracer | None = None,
    **root_attrs: object,
) -> Span | None:
    """Convert a Fig. 4 :class:`~repro.distributed.events.Timeline` into spans.

    Every :class:`~repro.distributed.events.Interval` becomes one span
    carrying ``rank``/``resource``/``simulated=True`` attributes, all
    parented under a single ``root_name`` span covering the makespan.
    Interval times are simulated seconds from 0; they are rebased onto
    the tracer clock so exports of mixed real + simulated runs stay
    monotonic.  The root joins the caller's current trace (or starts a
    fresh one) and every interval span inherits it.

    Returns the root span, or ``None`` when instrumentation is off.
    """
    if not _metrics.enabled():
        return None
    tracer = tracer or _default_tracer
    base = tracer.clock()
    trace = tracer.current_trace() or new_trace_id()
    root = Span(
        name=root_name,
        span_id=tracer.next_id(),
        parent_id=tracer.current(),
        start=base,
        end=base + timeline.makespan,
        thread=threading.current_thread().name,
        attrs={"simulated": True, **root_attrs},
        trace_id=trace,
    )
    tracer.add_finished(root)
    for iv in timeline.intervals:
        tracer.add_finished(
            Span(
                name=iv.label,
                span_id=tracer.next_id(),
                parent_id=root.span_id,
                start=base + iv.start,
                end=base + iv.end,
                thread=f"rank{iv.rank}/{iv.resource}",
                attrs={
                    "rank": iv.rank,
                    "resource": iv.resource,
                    "simulated": True,
                },
                trace_id=trace,
            )
        )
    return root
