"""Lightweight span tracer with cross-thread context propagation.

A *span* is one named, timed section of work with a parent — the unit
Chrome's trace viewer and Perfetto draw as a box on a track.  The
distributed runtime (:mod:`repro.distributed.runtime`) runs one Python
thread per rank, so parenting must survive a thread hop: the driver
captures a :class:`SpanContext` under its ``distributed_spmv`` root
span and each rank worker *attaches* it before opening its own
``rank.*`` child spans.  Thread-local stacks keep concurrent ranks
from seeing each other's current span.

The simulated execution modes (Fig. 4) don't run in real time; their
:class:`~repro.distributed.events.Timeline` intervals are bridged into
synthetic spans by :func:`record_timeline`, so simulated and real runs
share one export path (:mod:`repro.obs.export`).

Everything is a no-op while :func:`repro.obs.metrics.enabled` is
false: :meth:`Tracer.span` then yields a shared null span without
allocating or locking.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs import metrics as _metrics

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "get_tracer",
    "span",
    "current_span",
    "capture_context",
    "attach_context",
    "record_timeline",
    "reset_spans",
]


@dataclass
class Span:
    """One timed, named section of work."""

    name: str
    span_id: int
    parent_id: int | None
    start: float  # seconds on the tracer clock
    end: float = 0.0
    thread: str = ""
    attrs: dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def set_attr(self, key: str, value: object) -> "Span":
        self.attrs[key] = value
        return self


@dataclass(frozen=True)
class SpanContext:
    """Immutable handle to a span, safe to hand to another thread."""

    span_id: int | None


class _NullSpan:
    """Shared do-nothing span yielded while instrumentation is off."""

    __slots__ = ()
    name = ""
    span_id = None
    parent_id = None
    attrs: dict[str, object] = {}

    def set_attr(self, key: str, value: object) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans; one process-wide default exists."""

    def __init__(self) -> None:
        self._finished: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)
        self.clock = time.perf_counter

    # -- thread-local current-span stack ----------------------------------

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> int | None:
        """span_id of the innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # -- recording --------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: object):
        """Open a child span of this thread's current span.

        No-op (yields a shared null span) when instrumentation is
        disabled — the fast path takes one global read and one branch.
        """
        if not _metrics.enabled():
            yield _NULL_SPAN
            return
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            sid = next(self._ids)
        sp = Span(
            name=name,
            span_id=sid,
            parent_id=parent,
            start=self.clock(),
            thread=threading.current_thread().name,
            attrs=dict(attrs),
        )
        stack.append(sid)
        try:
            yield sp
        finally:
            sp.end = self.clock()
            stack.pop()
            with self._lock:
                self._finished.append(sp)

    @contextmanager
    def attach(self, ctx: SpanContext):
        """Adopt ``ctx`` as this thread's current span (cross-thread link).

        Rank workers call this with the context captured by the driver
        so their ``rank.*`` spans parent under the ``distributed_spmv``
        root even though they run on different threads.
        """
        if not _metrics.enabled() or ctx.span_id is None:
            yield
            return
        stack = self._stack()
        stack.append(ctx.span_id)
        try:
            yield
        finally:
            stack.pop()

    def context(self) -> SpanContext:
        """Capture the current span as a handle for another thread."""
        return SpanContext(self.current())

    def add_finished(self, sp: Span) -> None:
        """Record an externally built (e.g. synthetic) finished span."""
        with self._lock:
            self._finished.append(sp)

    def next_id(self) -> int:
        with self._lock:
            return next(self._ids)

    # -- inspection -------------------------------------------------------

    def finished(self) -> list[Span]:
        """Snapshot of all finished spans, in completion order."""
        with self._lock:
            return list(self._finished)

    def find(self, name: str) -> list[Span]:
        return [s for s in self.finished() if s.name == name]

    def reset(self) -> None:
        with self._lock:
            self._finished.clear()


_default_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer used by all instrumentation."""
    return _default_tracer


def span(name: str, **attrs: object):
    """``with obs.span("rank.spmv", rank=3): ...`` on the default tracer."""
    return _default_tracer.span(name, **attrs)


def current_span() -> int | None:
    return _default_tracer.current()


def capture_context() -> SpanContext:
    return _default_tracer.context()


def attach_context(ctx: SpanContext):
    return _default_tracer.attach(ctx)


def reset_spans() -> None:
    _default_tracer.reset()


# ---------------------------------------------------------------------------
# Timeline -> spans bridge (simulated runs share the real export path)
# ---------------------------------------------------------------------------


def record_timeline(
    timeline,
    *,
    root_name: str = "distributed_spmv",
    tracer: Tracer | None = None,
    **root_attrs: object,
) -> Span | None:
    """Convert a Fig. 4 :class:`~repro.distributed.events.Timeline` into spans.

    Every :class:`~repro.distributed.events.Interval` becomes one span
    carrying ``rank``/``resource``/``simulated=True`` attributes, all
    parented under a single ``root_name`` span covering the makespan.
    Interval times are simulated seconds from 0; they are rebased onto
    the tracer clock so exports of mixed real + simulated runs stay
    monotonic.

    Returns the root span, or ``None`` when instrumentation is off.
    """
    if not _metrics.enabled():
        return None
    tracer = tracer or _default_tracer
    base = tracer.clock()
    root = Span(
        name=root_name,
        span_id=tracer.next_id(),
        parent_id=tracer.current(),
        start=base,
        end=base + timeline.makespan,
        thread=threading.current_thread().name,
        attrs={"simulated": True, **root_attrs},
    )
    tracer.add_finished(root)
    for iv in timeline.intervals:
        tracer.add_finished(
            Span(
                name=iv.label,
                span_id=tracer.next_id(),
                parent_id=root.span_id,
                start=base + iv.start,
                end=base + iv.end,
                thread=f"rank{iv.rank}/{iv.resource}",
                attrs={
                    "rank": iv.rank,
                    "resource": iv.resource,
                    "simulated": True,
                },
            )
        )
    return root
