"""Shard hosts for the serve fleet: N servers, each owning row blocks.

The paper's scalability story (Sect. III) is one device per contiguous
row block with the result gathered in block order.  The fleet applies
it to serving: each **shard** is a full serve stack — a
:class:`~repro.serve.registry.MatrixRegistry` holding *row-block
slices* of registered matrices plus a micro-batching
:class:`~repro.serve.scheduler.SpMVServer` — and the
:class:`~repro.serve.router.FleetRouter` in front scatters requests to
the shards owning a matrix's blocks and gathers the row-block results
in plan order.

Two shard transports share one core (:class:`_ShardCore`):

* :class:`ProcessShard` — the production transport: the shard runs in
  its own OS process (``repro serve --fleet N``), commands and results
  travel over a duplex :mod:`multiprocessing` pipe, and a reader
  thread on the parent side resolves submission futures.  A dead
  process (crash, ``kill()``, chaos ``shard_kill``) fails every
  in-flight future with :class:`~repro.serve.errors.ShardDown` — the
  router's failover trigger.
* :class:`InprocShard` — the same semantics on threads in the calling
  process: deterministic for tests, and the cheap default for
  short-lived programmatic fleets.

**Modeled-device pacing.**  For scaling experiments on hosts with
fewer cores than shards (CI, laptops), a shard can pace its kernels to
the paper's Eq. (1) bandwidth model: :func:`eq1_spmm_seconds` predicts
the block-product time for a device of a given memory bandwidth, and
:class:`PacingRegistry` wraps every bound matrix so each ``spmv`` /
``spmm`` takes at least that long (the real kernel still runs — the
answers stay exact; only the *timing* emulates the device).  This is
the serving analogue of the repo's other model-driven scaling studies
(``bench_fig5_scaling.py``): the router, pipes, batching and hedging
are all real, the device speed is modeled.
"""

from __future__ import annotations

import contextlib
import itertools
import multiprocessing as mp
import signal
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field, replace

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.serve.errors import ServeError, ShardDown
from repro.serve.registry import MatrixRegistry
from repro.serve.scheduler import SpMVServer

__all__ = [
    "ShardConfig",
    "Fleet",
    "InprocShard",
    "ProcessShard",
    "PacingRegistry",
    "ShardRequestError",
    "eq1_spmm_seconds",
    "block_name",
    "plan_for_shard",
]

FLEET_MODES = ("inproc", "process")


def block_name(key: str, block: int) -> str:
    """Registry name of one row block of a fleet matrix."""
    return f"{key}@{block}"


class ShardRequestError(ServeError):
    """A request failed inside a (remote) shard; carries the remote type.

    The router treats it like any shard-side failure: try the next
    replica, degrade only when none is left.
    """

    http_status = 503

    def __init__(self, shard_id: int, remote_type: str, message: str):
        self.shard_id = shard_id
        self.remote_type = remote_type
        super().__init__(f"shard {shard_id} {remote_type}: {message}")


# ---------------------------------------------------------------------------
# Eq. (1) modeled-device pacing
# ---------------------------------------------------------------------------

def eq1_spmm_seconds(
    nnz: int,
    nrows: int,
    k: int,
    bandwidth_bytes: float,
    alpha: float = 1.0,
) -> float:
    """Predicted block-product time on a device of the given bandwidth.

    Eq. (1) traffic for a DP CRS sweep with ``k`` right-hand sides: the
    matrix values + column indices stream once (``8 + 4`` bytes per
    non-zero), and each RHS adds the x gather (``8·alpha`` bytes per
    non-zero, ``alpha ∈ [1/Nnzr, 1]``) plus the write-allocate + store
    of its result rows (``16`` bytes per row).
    """
    if bandwidth_bytes <= 0:
        raise ValueError(f"bandwidth_bytes must be > 0, got {bandwidth_bytes}")
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    traffic = nnz * 12.0 + k * (8.0 * alpha * nnz + 16.0 * nrows)
    return traffic / bandwidth_bytes


class _PacedBound:
    """A bound matrix whose kernels take at least the Eq. (1) device time.

    Pure timing shim: results come from the real wrapped kernels, the
    residual of the modeled time is slept off (releasing the GIL, so
    paced shards overlap like real devices would).  ``per_request``
    switches the spmm model from one shared matrix stream per batch
    (the micro-batching discount) to one stream per vector — the
    device then serves every request at single-vector speed, which
    isolates sharding measurements from batch-formation noise.
    """

    def __init__(
        self,
        inner,
        bandwidth_bytes: float,
        alpha: float = 1.0,
        per_request: bool = False,
    ):
        self._inner = inner
        self._bw = float(bandwidth_bytes)
        self._alpha = float(alpha)
        self._per_request = bool(per_request)

    def _pace(self, k: int, t0: float) -> None:
        if self._per_request:
            target = k * eq1_spmm_seconds(
                self._inner.nnz, self._inner.nrows, 1, self._bw, self._alpha
            )
        else:
            target = eq1_spmm_seconds(
                self._inner.nnz, self._inner.nrows, k, self._bw, self._alpha
            )
        rest = target - (time.perf_counter() - t0)
        if rest > 0:
            time.sleep(rest)

    def spmv(self, x, out=None):
        t0 = time.perf_counter()
        y = self._inner.spmv(x, out=out)
        self._pace(1, t0)
        return y

    def spmm(self, X, out=None):
        t0 = time.perf_counter()
        Y = self._inner.spmm(X, out=out)
        self._pace(int(np.asarray(X).shape[1]), t0)
        return Y

    def clone(self) -> "_PacedBound":
        return _PacedBound(
            self._inner.clone(), self._bw, self._alpha, self._per_request
        )

    def __getattr__(self, name):
        return getattr(self._inner, name)


class PacingRegistry(MatrixRegistry):
    """A registry whose resident matrices run at modeled-device speed.

    ``pace`` is ``{"bandwidth_bytes": float, "alpha": float}`` (alpha
    optional); ``None`` makes this an ordinary registry.
    """

    def __init__(self, *, pace: dict | None = None, **kwargs):
        super().__init__(**kwargs)
        if pace is not None and "bandwidth_bytes" not in pace:
            raise ValueError("pace needs a 'bandwidth_bytes' entry")
        self._pace_params = dict(pace) if pace else None

    def acquire(self, name: str):
        lease = super().acquire(name)
        if self._pace_params is not None:
            with self._lock:
                entry = lease._entry
                if not isinstance(entry.bound, _PacedBound):
                    entry.bound = _PacedBound(
                        entry.bound,
                        self._pace_params["bandwidth_bytes"],
                        self._pace_params.get("alpha", 1.0),
                        self._pace_params.get("per_request", False),
                    )
        return lease


# ---------------------------------------------------------------------------
# shard configuration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardConfig:
    """Everything one shard needs to boot (picklable for process mode)."""

    shard_id: int
    workers: int = 1
    max_batch: int = 16
    max_delay_ms: float = 1.0
    max_queue: int = 512
    policy: str = "block"
    tune: bool = False
    #: Eq. (1) pacing params ({"bandwidth_bytes", "alpha"}) or None
    pace: dict | None = None
    #: serve-layer fault schedule for this shard (already filtered to
    #: it — see :func:`plan_for_shard`)
    faults: object | None = field(default=None, compare=False)


def plan_for_shard(plan, shard_id: int):
    """Restrict a :class:`~repro.faults.plan.FaultPlan` to one shard.

    Keeps events carrying no ``shard`` target (they apply everywhere)
    plus events targeting exactly ``shard_id`` — with the ``shard``
    pair stripped, since shard-internal injection sites label by
    ``worker``/``matrix``, not by shard.  ``shard_kill`` events are
    dropped entirely: they are consumed at the router, never inside a
    shard.
    """
    if plan is None:
        return None
    kept = []
    for ev in plan.events:
        if ev.kind == "shard_kill":
            continue
        labels = dict(ev.target)
        if "shard" in labels:
            if labels.pop("shard") != shard_id:
                continue
            ev = replace(ev, target=tuple(sorted(labels.items())))
        kept.append(ev)
    if not kept:
        return None
    return replace(plan, events=tuple(kept))


# ---------------------------------------------------------------------------
# shard core (shared by both transports)
# ---------------------------------------------------------------------------

class _ShardCore:
    """Registry + scheduler + block bookkeeping of one shard."""

    def __init__(self, config: ShardConfig):
        self.config = config
        injector = None
        if config.faults is not None:
            injector = config.faults.injector()
        self.faults = injector
        self.registry = PacingRegistry(
            pace=config.pace, tune=config.tune, faults=injector
        )
        self.server = SpMVServer(
            self.registry,
            max_batch=config.max_batch,
            max_delay_ms=config.max_delay_ms,
            max_queue=config.max_queue,
            policy=config.policy,
            workers=config.workers,
            faults=injector,
        )

    def register_block(
        self,
        key: str,
        block: int,
        matrix: CSRMatrix,
        variant: str | None,
    ) -> None:
        self.registry.register(
            block_name(key, block), matrix=matrix, variant=variant, tune=False
        )

    def submit(self, key: str, block: int, x, deadline_ms):
        return self.server.submit(
            block_name(key, block), x, deadline_ms=deadline_ms
        )

    def spmm(self, key: str, block: int, X) -> np.ndarray:
        with self.registry.acquire(block_name(key, block)) as lease:
            bound = lease.clone_for("spmm")
            return bound.spmm(np.asarray(X))

    def stats(self) -> dict:
        s = self.server.stats()
        s["shard"] = self.config.shard_id
        s["alive"] = True
        return s

    def resize(self, n: int) -> int:
        return self.server.resize_workers(n)

    def close(self, *, drain: bool = True) -> None:
        self.server.close(drain=drain)


# ---------------------------------------------------------------------------
# in-process transport
# ---------------------------------------------------------------------------

class InprocShard:
    """A shard hosted on threads in the calling process."""

    mode = "inproc"

    def __init__(self, config: ShardConfig):
        self.shard_id = config.shard_id
        self.config = config
        self._core = _ShardCore(config)
        self._aux = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix=f"shard{config.shard_id}-aux"
        )
        self._dead = False
        self._death_reason = ""

    @property
    def alive(self) -> bool:
        return not self._dead

    def _check(self) -> None:
        if self._dead:
            raise ShardDown(self.shard_id, self._death_reason)

    def register_block(self, key, block, matrix, variant=None) -> None:
        self._check()
        self._core.register_block(key, block, matrix, variant)

    def submit(self, key, block, x, deadline_ms=None) -> "Future[np.ndarray]":
        self._check()
        return self._core.submit(key, block, x, deadline_ms)

    def spmm(self, key, block, X) -> "Future[np.ndarray]":
        self._check()
        return self._aux.submit(self._core.spmm, key, block, X)

    def stats(self) -> dict:
        self._check()
        return self._core.stats()

    def resize_workers(self, n: int) -> int:
        self._check()
        return self._core.resize(n)

    def kill(self, reason: str = "killed") -> None:
        """Simulate shard death: in-flight work fails, submissions raise."""
        if self._dead:
            return
        self._dead = True
        self._death_reason = reason
        self._aux.shutdown(wait=False, cancel_futures=True)
        self._core.close(drain=False)

    def close(self) -> None:
        if self._dead:
            return
        self._dead = True
        self._death_reason = "closed"
        self._aux.shutdown(wait=True)
        self._core.close(drain=True)


# ---------------------------------------------------------------------------
# process transport
# ---------------------------------------------------------------------------

def _encode_exc(exc: Exception) -> tuple[str, str]:
    return type(exc).__name__, str(exc)


def _shard_main(conn, config: ShardConfig) -> None:
    """Entry point of a shard process: serve pipe commands until stop."""
    # A terminal ^C delivers SIGINT to the whole foreground process
    # group; shutdown is the parent's job (stop message / terminate),
    # so the shard must not die mid-reply with a KeyboardInterrupt
    # traceback of its own.
    with contextlib.suppress(ValueError, OSError):
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    core = _ShardCore(config)
    send_lock = threading.Lock()
    aux = ThreadPoolExecutor(
        max_workers=2, thread_name_prefix=f"shard{config.shard_id}-aux"
    )

    def reply(rid, ok, payload) -> None:
        with send_lock:
            try:
                conn.send((rid, ok, payload))
            except (BrokenPipeError, OSError):  # parent gone: nothing to do
                pass

    def run_sync(rid, fn, *args) -> None:
        try:
            reply(rid, True, fn(*args))
        except Exception as exc:  # noqa: BLE001 - shipped to the parent
            reply(rid, False, _encode_exc(exc))

    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            op, rid = msg[0], msg[1]
            if op == "stop":
                reply(rid, True, None)
                break
            try:
                if op == "spmv":
                    _, _, key, block, x, deadline_ms = msg
                    fut = core.submit(key, block, x, deadline_ms)

                    def _done(f, rid=rid):
                        exc = f.exception()
                        if exc is None:
                            reply(rid, True, f.result())
                        else:
                            reply(rid, False, _encode_exc(exc))

                    fut.add_done_callback(_done)
                elif op == "spmm":
                    _, _, key, block, X = msg
                    aux.submit(run_sync, rid, core.spmm, key, block, X)
                elif op == "register":
                    _, _, key, block, matrix, variant = msg
                    core.register_block(key, block, matrix, variant)
                    reply(rid, True, None)
                elif op == "resize":
                    reply(rid, True, core.resize(msg[2]))
                elif op == "stats":
                    reply(rid, True, core.stats())
                elif op == "ping":
                    reply(rid, True, "pong")
                else:
                    reply(rid, False, ("ValueError", f"unknown op {op!r}"))
            except Exception as exc:  # noqa: BLE001 - shipped to the parent
                reply(rid, False, _encode_exc(exc))
    finally:
        aux.shutdown(wait=False, cancel_futures=True)
        try:
            core.close(drain=False)
        except Exception:  # pragma: no cover - best-effort teardown
            pass


class ProcessShard:
    """A shard hosted in its own OS process behind a duplex pipe."""

    mode = "process"

    def __init__(
        self,
        config: ShardConfig,
        *,
        start_method: str | None = None,
        boot_timeout_s: float = 30.0,
    ):
        self.shard_id = config.shard_id
        self.config = config
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        ctx = mp.get_context(start_method)
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self._conn = parent_conn
        self._proc = ctx.Process(
            target=_shard_main,
            args=(child_conn, config),
            name=f"repro-shard-{config.shard_id}",
            daemon=True,
        )
        self._proc.start()
        child_conn.close()
        self._rid = itertools.count()
        self._pending: dict[int, Future] = {}
        self._plock = threading.Lock()
        self._wlock = threading.Lock()
        self._dead = False
        self._death_reason = ""
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"shard{config.shard_id}-reader",
            daemon=True,
        )
        self._reader.start()
        # handshake: surfaces boot failures at construction time
        self._call("ping", timeout=boot_timeout_s)

    # -- parent-side plumbing ---------------------------------------------
    @property
    def alive(self) -> bool:
        return not self._dead

    def _read_loop(self) -> None:
        try:
            while True:
                rid, ok, payload = self._conn.recv()
                with self._plock:
                    fut = self._pending.pop(rid, None)
                if fut is None or fut.done():
                    continue
                if not fut.set_running_or_notify_cancel():
                    continue
                if ok:
                    fut.set_result(payload)
                else:
                    fut.set_exception(
                        ShardRequestError(self.shard_id, payload[0], payload[1])
                    )
        except (EOFError, OSError, ValueError):
            self._on_death("shard process exited")

    def _on_death(self, reason: str) -> None:
        with self._plock:
            if self._dead:
                return
            self._dead = True
            self._death_reason = reason
            pending = list(self._pending.values())
            self._pending.clear()
        exc = ShardDown(self.shard_id, reason)
        for fut in pending:
            if not fut.done() and fut.set_running_or_notify_cancel():
                fut.set_exception(exc)

    def _send(self, op: str, *args) -> Future:
        if self._dead:
            raise ShardDown(self.shard_id, self._death_reason)
        rid = next(self._rid)
        fut: Future = Future()
        with self._plock:
            self._pending[rid] = fut
        try:
            with self._wlock:
                self._conn.send((op, rid, *args))
        except (BrokenPipeError, OSError) as exc:
            with self._plock:
                self._pending.pop(rid, None)
            self._on_death(f"pipe write failed: {exc}")
            raise ShardDown(self.shard_id, self._death_reason) from exc
        return fut

    def _call(self, op: str, *args, timeout: float = 30.0):
        return self._send(op, *args).result(timeout)

    # -- shard API ---------------------------------------------------------
    def register_block(self, key, block, matrix, variant=None) -> None:
        self._call("register", key, block, matrix, variant, timeout=120.0)

    def submit(self, key, block, x, deadline_ms=None) -> "Future[np.ndarray]":
        return self._send("spmv", key, block, np.asarray(x), deadline_ms)

    def spmm(self, key, block, X) -> "Future[np.ndarray]":
        return self._send("spmm", key, block, np.asarray(X))

    def stats(self) -> dict:
        return self._call("stats", timeout=30.0)

    def resize_workers(self, n: int) -> int:
        return self._call("resize", n, timeout=30.0)

    def kill(self, reason: str = "killed") -> None:
        """Hard-kill the shard process (the chaos ``shard_kill`` effect)."""
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=5.0)
        self._on_death(reason)

    def close(self) -> None:
        if not self._dead:
            try:
                self._call("stop", timeout=10.0)
            except (ShardDown, Exception):  # noqa: BLE001 - already dying
                pass
        self._proc.join(timeout=10.0)
        if self._proc.is_alive():  # pragma: no cover - stuck process
            self._proc.terminate()
            self._proc.join(timeout=5.0)
        self._on_death("closed")
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


# ---------------------------------------------------------------------------
# the fleet
# ---------------------------------------------------------------------------

class Fleet:
    """N shard hosts with one lifecycle (context manager).

    ``mode`` picks the transport (``"process"`` for real OS processes,
    ``"inproc"`` for deterministic thread-backed shards); every other
    keyword is a per-shard :class:`ShardConfig` field applied
    uniformly.  ``faults`` (a :class:`~repro.faults.plan.FaultPlan`) is
    split per shard via :func:`plan_for_shard`.
    """

    def __init__(
        self,
        nshards: int,
        *,
        mode: str = "inproc",
        workers: int = 1,
        max_batch: int = 16,
        max_delay_ms: float = 1.0,
        max_queue: int = 512,
        policy: str = "block",
        tune: bool = False,
        pace: dict | None = None,
        faults=None,
        start_method: str | None = None,
    ):
        if nshards < 1:
            raise ValueError(f"nshards must be >= 1, got {nshards}")
        if mode not in FLEET_MODES:
            raise ValueError(f"mode must be one of {FLEET_MODES}, got {mode!r}")
        self.mode = mode
        self.shards: list = []
        for i in range(nshards):
            config = ShardConfig(
                shard_id=i,
                workers=workers,
                max_batch=max_batch,
                max_delay_ms=max_delay_ms,
                max_queue=max_queue,
                policy=policy,
                tune=tune,
                pace=pace,
                faults=plan_for_shard(faults, i),
            )
            if mode == "inproc":
                self.shards.append(InprocShard(config))
            else:
                self.shards.append(
                    ProcessShard(config, start_method=start_method)
                )
        self._by_id = {s.shard_id: s for s in self.shards}

    @property
    def nshards(self) -> int:
        return len(self.shards)

    def shard(self, shard_id: int):
        try:
            return self._by_id[shard_id]
        except KeyError:
            raise ValueError(f"no shard {shard_id}") from None

    def alive_ids(self) -> list[int]:
        return [s.shard_id for s in self.shards if s.alive]

    def kill(self, shard_id: int, reason: str = "killed") -> None:
        self.shard(shard_id).kill(reason)

    def close(self) -> None:
        for s in self.shards:
            s.close()

    def __enter__(self) -> "Fleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        alive = len(self.alive_ids())
        return f"<Fleet mode={self.mode} shards={self.nshards} alive={alive}>"
