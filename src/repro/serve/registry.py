"""Named, refcounted, byte-budgeted pool of resident bound matrices.

The registry is the server's working set: matrices are *registered* as
cheap named specs (a loader callable, or a live instance), *loaded*
lazily on first use — assembly + :func:`repro.engine.bind` through the
autotuner — and kept resident as refcounted
:class:`~repro.engine.bound.BoundMatrix` prototypes.  A byte budget
bounds residency: loading past the budget evicts least-recently-used
idle entries, but **never** an entry somebody holds a lease on
(eviction under load would invalidate in-flight batches).

Concurrency contract: one :class:`~repro.engine.bound.BoundMatrix` is
not safe for two threads (shared workspace scratch), so leases hand out
per-worker *clones* — shared matrix data + tune decision, private
scratch — via :meth:`MatrixLease.clone_for`.  Clones are cached per
(matrix, worker) pair, so the steady state allocates nothing.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.engine.bound import BoundMatrix, bind
from repro.formats.base import SparseMatrixFormat
from repro.serve.errors import MatrixNotFound, RegistryLoadFailed

__all__ = ["MatrixSpec", "MatrixLease", "MatrixRegistry"]


@dataclass(frozen=True)
class MatrixSpec:
    """How to produce (and bind) one named matrix."""

    name: str
    loader: Callable[[], SparseMatrixFormat]
    #: force a kernel variant (skips autotuning); ``None`` = autotune.
    #: Pinning a stored-order sequential variant (the scipy delegates)
    #: also pins bitwise consistency between batched and unbatched
    #: execution — see docs/serving.md.
    variant: str | None = None
    tune: bool = True


class _Entry:
    """One resident matrix: bound prototype + refcount + clone pool."""

    __slots__ = ("name", "bound", "nbytes", "refcount", "clones")

    def __init__(self, name: str, bound: BoundMatrix):
        self.name = name
        self.bound = bound
        self.nbytes = int(bound.matrix.nbytes)
        self.refcount = 0
        self.clones: dict[object, BoundMatrix] = {}


class MatrixLease:
    """A refcounted handle on a resident matrix (context manager).

    While any lease is open the entry cannot be evicted.  Always
    release (use ``with registry.acquire(name) as lease:``) — a leaked
    lease pins the matrix in memory forever.
    """

    def __init__(self, registry: "MatrixRegistry", entry: _Entry):
        self._registry = registry
        self._entry = entry
        self._released = False

    # -- data access -------------------------------------------------------
    @property
    def name(self) -> str:
        return self._entry.name

    @property
    def bound(self) -> BoundMatrix:
        """The shared prototype — single-threaded use only."""
        return self._entry.bound

    @property
    def matrix(self) -> SparseMatrixFormat:
        return self._entry.bound.matrix

    @property
    def nbytes(self) -> int:
        return self._entry.nbytes

    def clone_for(self, token: object) -> BoundMatrix:
        """A worker-private clone, cached under ``token``.

        Each scheduler worker passes a stable token (its index), so
        repeated batches against the same matrix reuse one clone and
        its warmed-up workspace buffers.
        """
        with self._registry._lock:
            clone = self._entry.clones.get(token)
            if clone is None:
                clone = self._entry.bound.clone()
                self._entry.clones[token] = clone
            return clone

    # -- lifecycle ---------------------------------------------------------
    def release(self) -> None:
        if not self._released:
            self._released = True
            self._registry._release(self._entry)

    def __enter__(self) -> "MatrixLease":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class MatrixRegistry:
    """Loads, binds, pins and evicts named matrices under a byte budget."""

    def __init__(
        self,
        *,
        budget_bytes: int | None = None,
        tune: bool = True,
        tuner_cache=None,
        faults=None,
    ):
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError(f"budget_bytes must be > 0, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self._tune = tune
        self._tuner_cache = tuner_cache
        #: optional :class:`~repro.faults.inject.FaultInjector`; its
        #: ``registry_load_failure`` events fire at the load site below
        self.faults = faults
        self._specs: dict[str, MatrixSpec] = {}
        #: LRU order: oldest first; move_to_end on every acquire
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._lock = threading.RLock()
        self.loads = 0
        self.hits = 0
        self.evictions = 0

    # -- registration ------------------------------------------------------
    def register(
        self,
        name: str,
        loader: Callable[[], SparseMatrixFormat] | None = None,
        *,
        matrix: SparseMatrixFormat | None = None,
        variant: str | None = None,
        tune: bool | None = None,
    ) -> MatrixSpec:
        """Register ``name`` with a loader callable or a live instance."""
        if (loader is None) == (matrix is None):
            raise ValueError("register() needs exactly one of loader= or matrix=")
        if loader is None:
            inst = matrix

            def loader() -> SparseMatrixFormat:  # noqa: F811 - closure
                return inst

        spec = MatrixSpec(
            name=name,
            loader=loader,
            variant=variant,
            tune=self._tune if tune is None else tune,
        )
        with self._lock:
            self._specs[name] = spec
        return spec

    def register_suite(
        self,
        name: str,
        key: str | None = None,
        *,
        fmt: str = "pJDS",
        scale: int = 64,
        seed: int = 0,
        variant: str | None = None,
    ) -> MatrixSpec:
        """Register a paper-suite generator matrix (lazy assembly)."""
        key = key or name

        def loader() -> SparseMatrixFormat:
            from repro.formats import convert
            from repro.matrices import generate

            return convert(generate(key, scale=scale, seed=seed), fmt)

        return self.register(name, loader, variant=variant)

    def names(self) -> list[str]:
        """All registered names (resident or not), sorted."""
        with self._lock:
            return sorted(self._specs)

    def has(self, name: str) -> bool:
        """True when ``name`` is registered (loaded or loadable)."""
        with self._lock:
            return name in self._specs

    def resident(self) -> list[str]:
        """Names currently loaded, LRU-oldest first."""
        with self._lock:
            return list(self._entries)

    @property
    def resident_bytes(self) -> int:
        with self._lock:
            return sum(e.nbytes for e in self._entries.values())

    # -- acquire / release -------------------------------------------------
    def acquire(self, name: str) -> MatrixLease:
        """Pin ``name`` resident (loading + binding it if needed)."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is not None:
                self.hits += 1
                entry.refcount += 1
                self._entries.move_to_end(name)
                if obs.enabled():
                    obs.inc("serve_registry_hits_total", 1, matrix=name)
                return MatrixLease(self, entry)
            spec = self._specs.get(name)
            if spec is None:
                raise MatrixNotFound(name, self.names())
            try:
                with obs.span("serve.registry_load", matrix=name):
                    if self.faults is not None:
                        self.faults.load_fault(name)
                    matrix = spec.loader()
                    bound = bind(
                        matrix,
                        tune=spec.tune,
                        variant=spec.variant,
                        cache=self._tuner_cache,
                        label=name,  # attribution tables report the served name
                    )
            except Exception as exc:
                # the spec stays registered: the next acquire retries
                if obs.enabled():
                    obs.inc("serve_registry_load_failures_total", 1, matrix=name)
                raise RegistryLoadFailed(
                    name, f"{type(exc).__name__}: {exc}"
                ) from exc
            entry = _Entry(name, bound)
            entry.refcount = 1  # pin before eviction can see it
            self._entries[name] = entry
            self.loads += 1
            if obs.enabled():
                obs.inc("serve_registry_loads_total", 1, matrix=name)
            self._evict_to_budget()
            self._publish_gauges()
            return MatrixLease(self, entry)

    def _release(self, entry: _Entry) -> None:
        with self._lock:
            entry.refcount -= 1
            if entry.refcount < 0:  # pragma: no cover - defensive
                raise AssertionError(f"refcount underflow for {entry.name}")
            # a release may unblock a pending over-budget state
            if self.budget_bytes is not None:
                self._evict_to_budget()
                self._publish_gauges()

    def _evict_to_budget(self) -> None:
        """Drop LRU idle entries until under budget (lock held).

        In-use entries (refcount > 0) are never touched; if only
        in-use entries remain the registry runs over budget — serving
        correctness beats the residency bound.
        """
        if self.budget_bytes is None:
            return
        total = sum(e.nbytes for e in self._entries.values())
        if total <= self.budget_bytes:
            return
        for name in list(self._entries):  # oldest first
            if total <= self.budget_bytes:
                break
            entry = self._entries[name]
            if entry.refcount > 0:
                continue
            del self._entries[name]
            total -= entry.nbytes
            self.evictions += 1
            if obs.enabled():
                obs.inc("serve_registry_evictions_total", 1, matrix=name)

    def _publish_gauges(self) -> None:
        if obs.enabled():
            obs.set_gauge(
                "serve_registry_bytes",
                sum(e.nbytes for e in self._entries.values()),
            )
            obs.set_gauge("serve_registry_resident", len(self._entries))

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict:
        """JSON-friendly snapshot for /statz."""
        with self._lock:
            return {
                "registered": self.names(),
                "resident": [
                    {
                        "name": e.name,
                        "format": e.bound.matrix.name,
                        "shape": list(e.bound.shape),
                        "nnz": e.bound.nnz,
                        "nbytes": e.nbytes,
                        "variant": e.bound.variant_name,
                        "refcount": e.refcount,
                        "clones": len(e.clones),
                    }
                    for e in self._entries.values()
                ],
                "resident_bytes": sum(e.nbytes for e in self._entries.values()),
                "budget_bytes": self.budget_bytes,
                "loads": self.loads,
                "hits": self.hits,
                "evictions": self.evictions,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MatrixRegistry {len(self._entries)}/{len(self._specs)} resident, "
            f"{self.resident_bytes} bytes (budget {self.budget_bytes})>"
        )
