"""Stdlib JSON-over-HTTP front-end for the serving subsystem.

A deliberately dependency-free shim over :class:`~repro.serve.client.Client`
built on ``http.server.ThreadingHTTPServer`` — one OS thread per
connection, which is exactly what the micro-batcher wants: concurrent
handler threads all block in ``server.spmv(...)`` and their vectors
coalesce into shared ``spmm`` batches.

Endpoints
---------
``GET /healthz``
    Liveness: ``{"status": "ok", "uptime_s": ..., "queue_depth": ...}``.
``GET /statz``
    Full scheduler + registry snapshot (see ``SpMVServer.stats``);
    ``GET /statz?format=prometheus`` returns the
    :mod:`repro.obs` text exposition instead (requires ``obs.enable()``).
``POST /v1/spmv``
    Body ``{"matrix": name, "x": [...], "deadline_ms"?: float}`` →
    ``{"y": [...]}``.  Errors map to the taxonomy's status codes
    (404 unknown matrix, 503 overloaded, 504 deadline).
``POST /v1/solve``
    Body ``{"matrix": name, "b": [...], "method"?: "cg"|"lanczos",
    "tol"?: float, "max_iter"?: int, "num_eigenvalues"?: int}``.
``GET /sloz``
    Burn-rate state of the attached :class:`~repro.obs.slo.SLOMonitor`
    (404 when the server runs without one).
``GET /fleetz``
    Fleet topology: per-shard liveness/queue depth, block placement
    per matrix, and the autoscaler's recent decisions (404 when the
    backend is a single server, not a
    :class:`~repro.serve.router.FleetRouter`).

The backend may be a single-process :class:`~repro.serve.client.Client`
or a :class:`~repro.serve.router.FleetRouter` — both expose the same
``spmv``/``solve``/``eigsh``/``stats``/``health``/``names``/``close``
surface, so every endpoint serves either unchanged.

Tracing: with instrumentation enabled, each ``POST`` opens a trace
root (honouring a caller-supplied ``X-Trace-Id`` header, minting a
fresh id otherwise); the id is echoed in the ``X-Trace-Id`` response
header and a ``trace_id`` payload field — success *and* error — so a
caller can always ask ``repro obs trace <id>`` what happened.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlparse

import numpy as np

from repro import obs
from repro.serve.client import Client
from repro.serve.errors import ServeError

__all__ = ["make_http_server", "run_http_server"]

_MAX_BODY = 64 * 2**20  # 64 MiB: a ~4M-row float64 vector


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    #: trace id of the in-flight request (set per-POST, echoed in replies)
    _trace_id: str | None = None

    # injected by make_http_server via the server instance
    @property
    def client(self) -> Client:
        return self.server.serve_client  # type: ignore[attr-defined]

    @property
    def slo_monitor(self):
        return getattr(self.server, "slo_monitor", None)

    # -- plumbing ----------------------------------------------------------
    def log_message(self, fmt, *args):  # noqa: D102 - stdlib signature
        if obs.enabled():
            obs.inc("serve_http_log_lines_total", 1)

    def _send_json(self, status: int, payload: dict) -> None:
        if self._trace_id and "trace_id" not in payload:
            payload = {**payload, "trace_id": self._trace_id}
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self._trace_id:
            self.send_header("X-Trace-Id", self._trace_id)
        self.end_headers()
        self.wfile.write(body)
        if obs.enabled():
            obs.inc(
                "serve_http_requests_total",
                1,
                path=urlparse(self.path).path,
                status=str(status),
            )

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ValueError("request body required")
        if length > _MAX_BODY:
            raise ValueError(f"request body too large ({length} bytes)")
        blob = json.loads(self.rfile.read(length))
        if not isinstance(blob, dict):
            raise ValueError("request body must be a JSON object")
        return blob

    # -- routes ------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = urlparse(self.path)
        if path.path == "/healthz":
            health = self.client.health()
            health["uptime_s"] = round(
                time.monotonic() - self.server.started_at, 3  # type: ignore[attr-defined]
            )
            self._send_json(200, health)
        elif path.path == "/statz":
            if "format=prometheus" in (path.query or ""):
                text = obs.prometheus_text()
                body = text.encode()
                self.send_response(200)
                self.send_header("Content-Type", "text/plain; version=0.0.4")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            else:
                stats = self.client.stats()
                mon = self.slo_monitor
                if mon is not None:
                    stats["slo"] = mon.state()
                self._send_json(200, stats)
        elif path.path == "/sloz":
            mon = self.slo_monitor
            if mon is None:
                self._send_json(
                    404,
                    {"error": "no SLO monitor attached; start with --slo"},
                )
            else:
                self._send_json(200, mon.state())
        elif path.path == "/fleetz":
            stats = self.client.stats()
            if not stats.get("fleet"):
                self._send_json(
                    404,
                    {"error": "not a fleet; start with serve --fleet N"},
                )
            else:
                self._send_json(200, stats)
        else:
            self._send_json(404, {"error": f"no such endpoint {path.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        path = urlparse(self.path).path
        self._trace_id = None
        root = {"/v1/spmv": "http.spmv", "/v1/solve": "http.solve"}.get(path)
        try:
            if root is None:
                self._send_json(404, {"error": f"no such endpoint {path!r}"})
                return
            with obs.trace_root(
                root, trace_id=self.headers.get("X-Trace-Id") or None
            ):
                self._trace_id = obs.current_trace()
                if path == "/v1/spmv":
                    self._spmv()
                else:
                    self._solve()
        except ServeError as exc:
            exc.with_trace(self._trace_id)
            self._send_json(
                exc.http_status,
                {"error": str(exc), "type": type(exc).__name__},
            )
        except (ValueError, TypeError, KeyError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": str(exc), "type": type(exc).__name__})

    def _spmv(self) -> None:
        req = self._read_json()
        name = req["matrix"]
        x = np.asarray(req["x"], dtype=np.float64)
        deadline_ms = req.get("deadline_ms")
        t0 = time.perf_counter()
        y = self.client.spmv(name, x, deadline_ms=deadline_ms)
        self._send_json(
            200,
            {
                "matrix": name,
                "y": y.tolist(),
                "n": int(y.shape[0]),
                "seconds": round(time.perf_counter() - t0, 6),
            },
        )

    def _solve(self) -> None:
        req = self._read_json()
        name = req["matrix"]
        method = req.get("method", "cg")
        if method == "cg":
            res = self.client.solve(
                name,
                np.asarray(req["b"], dtype=np.float64),
                tol=float(req.get("tol", 1e-8)),
                max_iter=req.get("max_iter"),
            )
            res["x"] = np.asarray(res["x"]).tolist()
        elif method == "lanczos":
            res = self.client.eigsh(
                name,
                num_eigenvalues=int(req.get("num_eigenvalues", 1)),
                tol=float(req.get("tol", 1e-8)),
                max_iter=int(req.get("max_iter", 200)),
            )
            res["eigenvalues"] = np.asarray(res["eigenvalues"]).tolist()
            res["residual_norms"] = np.asarray(res["residual_norms"]).tolist()
        else:
            raise ValueError(f"unknown method {method!r}; use 'cg' or 'lanczos'")
        res["matrix"] = name
        res["method"] = method
        self._send_json(200, res)


def make_http_server(
    client: Client,
    host: str = "127.0.0.1",
    port: int = 8000,
    *,
    slo=None,
) -> ThreadingHTTPServer:
    """Build (but do not run) the HTTP front-end; ``port=0`` auto-picks.

    ``slo`` (a :class:`~repro.obs.slo.SLOMonitor`) wires ``/sloz`` and
    the ``slo`` section of ``/statz``; the caller owns its lifecycle
    (``start``/``stop``).
    """
    httpd = ThreadingHTTPServer((host, port), _Handler)
    httpd.daemon_threads = True
    httpd.serve_client = client  # type: ignore[attr-defined]
    httpd.slo_monitor = slo  # type: ignore[attr-defined]
    httpd.started_at = time.monotonic()  # type: ignore[attr-defined]
    return httpd


def run_http_server(
    client: Client,
    host: str = "127.0.0.1",
    port: int = 8000,
    out=None,
    *,
    slo=None,
):
    """Blocking serve loop (the ``repro serve`` CLI entry point)."""
    httpd = make_http_server(client, host, port, slo=slo)
    if out is not None:
        print(
            f"repro serve listening on http://{host}:{httpd.server_address[1]} "
            f"(matrices: {', '.join(client.names()) or '<none>'})",
            file=out,
        )
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        httpd.shutdown()
        if slo is not None:
            slo.stop()
        client.close()
    return 0
