"""Front-end router of the serve fleet: placement, scatter/gather, hedging.

The :class:`FleetRouter` is the fleet's single client-facing surface —
it exposes the same API as the in-process
:class:`~repro.serve.client.Client` (``spmv`` / ``spmm`` / ``solve`` /
``eigsh`` / ``stats`` / ``health`` / ``names`` / ``close``), so the
HTTP front-end and the CLI serve either one unchanged.

**Placement.**  A registered matrix is split into contiguous row
blocks by the same nnz-balanced
:func:`~repro.distributed.partition.partition_rows` plans the
distributed runtime uses (Sect. III of the paper: one device per row
block).  Which shards own which blocks comes from a seeded
consistent-hash ring (:class:`HashRing`): the matrix key hashes to a
preference order over shards, block ``b``'s primary is the ``b``-th
entry of that order (round-robin over it when there are more blocks
than shards), and its replicas chain along the next entries
(*chained declustering* — a dead shard's load spreads over its
neighbours instead of doubling one survivor).  Ring placement makes
assignment deterministic per seed and **stable**: adding or removing
a shard moves only the keys whose ring interval changed.

**Scatter/gather.**  ``spmv`` broadcasts ``x`` to one live replica of
every block and concatenates the row-block results in plan order —
bitwise-equal to the single-server answer, because a CRS row's
reduction never crosses a block boundary.  Failures walk the replica
chain (*failover*); after ``hedge_delay_ms`` without an answer a
backup request races the slow replica (*hedging* — the fleet
generalisation of ``Client.spmv_hedged``, and the same discard
discipline: a losing replica's late error can never surface through a
call that already has an answer).  When every replica of some block is
gone the router either zero-fills those rows (``allow_partial=True``,
``status="partial"``) or raises
:class:`~repro.serve.errors.FleetDegraded`.

``solve``/``eigsh`` run the package's own iterative solvers over a
:class:`RoutedOperator` whose every ``apply`` is a routed spmv — so a
fleet solve performs the *same float operations in the same order* as
a single-server solve, and bitwise parity of spmv lifts to bitwise
parity of solutions.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
import time
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.distributed.partition import RowPartition, partition_rows
from repro.formats.csr import CSRMatrix
from repro.ops.protocol import LinearOperator
from repro.serve.errors import FleetDegraded, MatrixNotFound, ShardDown
from repro.serve.fleet import Fleet

__all__ = ["HashRing", "Placement", "FleetRouter", "RoutedOperator"]


# ---------------------------------------------------------------------------
# consistent hashing
# ---------------------------------------------------------------------------

class HashRing:
    """Seeded consistent-hash ring with virtual nodes.

    Each shard owns ``vnodes`` points on a 64-bit ring (blake2b of
    ``"{seed}/{shard}#{vnode}"``); a key hashes to a ring position and
    :meth:`preference` walks clockwise collecting *distinct* shards —
    the key's deterministic failover order.  Removing a shard deletes
    only its own points, so keys whose successor didn't change keep
    their placement (the bounded-movement property the placement tests
    pin down).
    """

    def __init__(self, shard_ids=(), *, vnodes: int = 64, seed: int = 0):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self.seed = seed
        self._points: list[tuple[int, int]] = []  # (hash, shard_id), sorted
        self._shards: set[int] = set()
        for sid in shard_ids:
            self.add(sid)

    def _hash(self, token: str) -> int:
        digest = hashlib.blake2b(
            f"{self.seed}/{token}".encode(), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big")

    def add(self, shard_id: int) -> None:
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id} already on the ring")
        self._shards.add(shard_id)
        for v in range(self.vnodes):
            self._points.append((self._hash(f"{shard_id}#{v}"), shard_id))
        self._points.sort()

    def remove(self, shard_id: int) -> None:
        if shard_id not in self._shards:
            raise ValueError(f"shard {shard_id} not on the ring")
        self._shards.discard(shard_id)
        self._points = [p for p in self._points if p[1] != shard_id]

    def shards(self) -> list[int]:
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def preference(self, key: str) -> list[int]:
        """All shards in this key's deterministic failover order."""
        if not self._points:
            raise ValueError("ring is empty")
        start = bisect.bisect_left(self._points, (self._hash(key), -1))
        order: list[int] = []
        seen: set[int] = set()
        n = len(self._points)
        for i in range(n):
            sid = self._points[(start + i) % n][1]
            if sid not in seen:
                seen.add(sid)
                order.append(sid)
        return order

    def owner(self, key: str) -> int:
        return self.preference(key)[0]


# ---------------------------------------------------------------------------
# placement
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Placement:
    """Where one registered matrix lives on the fleet."""

    key: str
    partition: RowPartition
    #: per block: replica shard ids, primary first (chained declustering)
    replicas: tuple
    shape: tuple
    dtype: np.dtype
    variant: str | None

    @property
    def nblocks(self) -> int:
        return self.partition.nparts

    def block_range(self, block: int) -> tuple[int, int]:
        return self.partition.row_range(block)

    def describe(self) -> dict:
        return {
            "key": self.key,
            "shape": list(self.shape),
            "variant": self.variant,
            "replication": len(self.replicas[0]) if self.replicas else 0,
            "blocks": [
                {
                    "rows": list(self.partition.row_range(b)),
                    "replicas": list(self.replicas[b]),
                }
                for b in range(self.nblocks)
            ],
        }


def place_blocks(ring: HashRing, key: str, nblocks: int, replicas: int) -> tuple:
    """Replica sets for each row block of ``key`` (primary first).

    The key's ring preference order seeds everything: block ``b``'s
    primary is entry ``b mod S`` and its replicas the next ``R-1``
    entries (all distinct because the preference order is).
    """
    order = ring.preference(key)
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    if replicas > len(order):
        raise ValueError(
            f"replication {replicas} exceeds fleet size {len(order)}"
        )
    return tuple(
        tuple(order[(b + j) % len(order)] for j in range(replicas))
        for b in range(nblocks)
    )


# ---------------------------------------------------------------------------
# routed operator (fleet solves)
# ---------------------------------------------------------------------------

class RoutedOperator(LinearOperator):
    """A registered fleet matrix as a :class:`LinearOperator`.

    Every ``apply`` is one routed scatter/gather spmv, so solvers
    drive the whole fleet — and produce bitwise the floats a
    single-server solve would.
    """

    def __init__(self, router: "FleetRouter", key: str):
        self.router = router
        self.key = key
        pl = router.placement(key)
        self._shape = tuple(pl.shape)
        self._dtype = np.dtype(pl.dtype)

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    def apply(self, x, out=None):
        y = self.router.spmv(self.key, x)
        if out is not None:
            out[:] = y
            return out
        return y

    def apply_block(self, X, out=None):
        Y = self.router.spmm(self.key, X)
        if out is not None:
            out[:] = Y
            return out
        return Y


# ---------------------------------------------------------------------------
# per-request gather state
# ---------------------------------------------------------------------------

class _BlockState:
    """Replica walk of one row block within one scatter/gather request."""

    __slots__ = ("block", "replicas", "next_idx", "futures", "hedge_at",
                 "result", "errors", "used_fallback")

    def __init__(self, block: int, replicas: tuple):
        self.block = block
        self.replicas = replicas
        self.next_idx = 0
        self.futures: dict = {}  # future -> shard_id
        self.hedge_at = float("inf")
        self.result = None
        self.errors: list = []
        self.used_fallback = False


class FleetRouter:
    """Scatter/gather front-end over a :class:`~repro.serve.fleet.Fleet`."""

    def __init__(
        self,
        fleet: Fleet,
        *,
        replicas: int = 1,
        blocks: int | None = None,
        vnodes: int = 64,
        seed: int = 0,
        hedge_delay_ms: float | None = None,
        allow_partial: bool = True,
        default_variant: str | None = "csr_scipy",
        faults=None,
    ):
        if replicas < 1 or replicas > fleet.nshards:
            raise ValueError(
                f"replicas must be in [1, {fleet.nshards}], got {replicas}"
            )
        self.fleet = fleet
        self.replicas = replicas
        self.default_blocks = blocks
        self.ring = HashRing(
            [s.shard_id for s in fleet.shards], vnodes=vnodes, seed=seed
        )
        #: None disables hedging (failover still walks the chain)
        self.hedge_delay_ms = hedge_delay_ms
        self.allow_partial = allow_partial
        self.default_variant = default_variant
        if faults is not None and not hasattr(faults, "take_one"):
            faults = faults.injector()
        self.faults = faults
        self._placements: dict[str, Placement] = {}
        self._down: dict[int, str] = {}
        self._lock = threading.Lock()
        self._status = {"ok": 0, "degraded": 0, "partial": 0, "error": 0}
        self._hedges = 0
        self._failovers = 0
        self._latency = obs.Summary(window=4096)
        #: attached by :meth:`attach_autoscaler`
        self.autoscaler = None
        self.monitor = None

    # -- registration ------------------------------------------------------
    def register(
        self,
        name: str,
        matrix=None,
        *,
        loader=None,
        blocks: int | None = None,
        replicas: int | None = None,
        variant: str | None = None,
    ) -> Placement:
        """Partition a matrix into row blocks and push them to shards.

        ``replicas`` overrides the router default per matrix (hot keys
        get more copies); ``blocks`` the block count (default: one per
        shard).  Idempotent re-registration replaces the placement.
        """
        if matrix is None:
            if loader is None:
                raise ValueError("register needs a matrix or a loader")
            matrix = loader()
        csr = (
            matrix
            if isinstance(matrix, CSRMatrix)
            else CSRMatrix.from_coo(matrix.to_coo())
        )
        nblocks = blocks or self.default_blocks or self.fleet.nshards
        nblocks = max(1, min(nblocks, csr.nrows))
        nreplicas = self.replicas if replicas is None else replicas
        variant = self.default_variant if variant is None else variant
        partition = partition_rows(
            csr.nrows, nblocks,
            row_weights=csr.row_lengths().astype(np.float64),
        )
        assignment = place_blocks(self.ring, name, nblocks, nreplicas)
        for b, (lo, hi) in enumerate(partition):
            block_csr = csr.row_block(lo, hi)
            for sid in assignment[b]:
                self.fleet.shard(sid).register_block(
                    name, b, block_csr, variant
                )
        placement = Placement(
            key=name,
            partition=partition,
            replicas=assignment,
            shape=tuple(csr.shape),
            dtype=np.dtype(csr.dtype),
            variant=variant,
        )
        with self._lock:
            self._placements[name] = placement
        return placement

    def placement(self, name: str) -> Placement:
        with self._lock:
            pl = self._placements.get(name)
        if pl is None:
            raise MatrixNotFound(name, self.names())
        return pl

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._placements)

    # -- shard liveness ----------------------------------------------------
    def _mark_down(self, shard_id: int, reason: str) -> None:
        with self._lock:
            known = shard_id in self._down
            if not known:
                self._down[shard_id] = reason
        if not known and obs.enabled():
            obs.inc("fleet_shards_down_total", 1, shard=str(shard_id))

    def _shard_usable(self, shard_id: int) -> bool:
        if shard_id in self._down:
            return False
        return self.fleet.shard(shard_id).alive

    def _fire_shard_faults(self) -> None:
        """Consume pending ``shard_kill`` events (the chaos drill hook)."""
        if self.faults is None:
            return
        for sid in self.fleet.alive_ids():
            ev = self.faults.take_one(
                "shard_kill", "serve", "fleet.router", shard=sid
            )
            if ev is not None:
                self.fleet.kill(sid, reason="injected shard_kill")

    # -- scatter/gather spmv ----------------------------------------------
    def spmv(
        self,
        matrix: str,
        x,
        *,
        deadline_ms: float | None = None,
        timeout: float | None = None,
        hedge_delay_ms: float | None = None,
    ) -> np.ndarray:
        """Blocking sharded ``y = A @ x`` (scatter, hedge, gather)."""
        y, _ = self.spmv_detail(
            matrix, x,
            deadline_ms=deadline_ms,
            timeout=timeout,
            hedge_delay_ms=hedge_delay_ms,
        )
        return y

    def spmv_detail(
        self,
        matrix: str,
        x,
        *,
        deadline_ms: float | None = None,
        timeout: float | None = None,
        hedge_delay_ms: float | None = None,
    ) -> tuple:
        """Like :meth:`spmv` but also returns the gather report.

        The report carries ``status`` (``ok`` / ``degraded`` /
        ``partial``), the zero-filled ``missing_blocks``, and the
        hedge/failover counts of this one request.
        """
        pl = self.placement(matrix)
        x = np.ascontiguousarray(np.asarray(x, dtype=pl.dtype))
        if x.ndim != 1 or x.shape[0] != pl.shape[1]:
            raise ValueError(
                f"x must have shape ({pl.shape[1]},), got {x.shape}"
            )
        t0 = time.perf_counter()
        status = "error"
        try:
            with obs.span("fleet.spmv", matrix=matrix, blocks=pl.nblocks):
                result, report = self._gather(
                    pl, x, deadline_ms, timeout, hedge_delay_ms
                )
            status = report["status"]
            return result, report
        finally:
            dt = time.perf_counter() - t0
            with self._lock:
                self._status[status] = self._status.get(status, 0) + 1
            self._latency.observe(dt)
            if obs.enabled():
                obs.inc("fleet_requests_total", 1, matrix=matrix, status=status)
                obs.observe_summary("fleet_request_seconds", dt, matrix=matrix)

    def _launch(self, st: _BlockState, matrix: str, x, deadline_ms) -> bool:
        """Submit to the next usable replica of one block."""
        while st.next_idx < len(st.replicas):
            sid = st.replicas[st.next_idx]
            via_fallback = st.next_idx > 0
            st.next_idx += 1
            if not self._shard_usable(sid):
                st.used_fallback = st.used_fallback or via_fallback
                continue
            try:
                fut = self.fleet.shard(sid).submit(
                    matrix, st.block, x, deadline_ms
                )
            except ShardDown as exc:
                self._mark_down(sid, str(exc))
                st.errors.append(exc)
                continue
            except Exception as exc:  # noqa: BLE001 - walk the chain
                st.errors.append(exc)
                continue
            st.futures[fut] = sid
            return True
        return False

    def _gather(self, pl, x, deadline_ms, timeout, hedge_delay_ms) -> tuple:
        self._fire_shard_faults()
        hedge_ms = (
            self.hedge_delay_ms if hedge_delay_ms is None else hedge_delay_ms
        )
        hedge_s = None if hedge_ms is None else max(hedge_ms, 0.0) / 1e3
        deadline = None if timeout is None else time.monotonic() + timeout
        states = [
            _BlockState(b, pl.replicas[b]) for b in range(pl.nblocks)
        ]
        hedges = failovers = 0
        for st in states:
            if self._launch(st, pl.key, x, deadline_ms) and hedge_s is not None:
                st.hedge_at = time.monotonic() + hedge_s

        while True:
            by_future = {}
            for st in states:
                if st.result is None:
                    by_future.update({f: st for f in st.futures})
            if not by_future:
                break
            now = time.monotonic()
            wait_for = None
            hedgeable = [
                st for st in states
                if st.result is None
                and st.futures
                and st.next_idx < len(st.replicas)
                and st.hedge_at != float("inf")
            ]
            if hedgeable:
                wait_for = max(min(st.hedge_at for st in hedgeable) - now, 0.0)
            if deadline is not None:
                rem = deadline - now
                if rem <= 0:
                    self._discard(states, pl.key)
                    raise TimeoutError(
                        f"fleet spmv({pl.key!r}) timed out with "
                        f"{len(by_future)} submission(s) in flight"
                    )
                wait_for = rem if wait_for is None else min(wait_for, rem)
            done, _ = wait(
                by_future, timeout=wait_for, return_when=FIRST_COMPLETED
            )
            for fut in done:
                st = by_future[fut]
                sid = st.futures.pop(fut, None)
                if st.result is not None:
                    continue
                if fut.cancelled():
                    continue
                exc = fut.exception()
                if exc is None:
                    st.result = fut.result()
                    if st.futures:
                        # a hedge lost the race: same discard
                        # discipline as Client.spmv_hedged
                        self._discard([st], pl.key)
                    continue
                st.errors.append(exc)
                if isinstance(exc, ShardDown) and sid is not None:
                    self._mark_down(sid, str(exc))
                st.used_fallback = True
                if not st.futures:
                    if self._launch(st, pl.key, x, deadline_ms):
                        failovers += 1
                        if hedge_s is not None:
                            st.hedge_at = time.monotonic() + hedge_s
            if hedge_s is not None and not done:
                now = time.monotonic()
                for st in hedgeable:
                    if st.result is None and now >= st.hedge_at:
                        if self._launch(st, pl.key, x, deadline_ms):
                            hedges += 1
                        st.hedge_at = now + hedge_s

        missing = [st.block for st in states if st.result is None]
        degraded = any(st.used_fallback or st.errors for st in states)
        if missing and not self.allow_partial:
            raise FleetDegraded(pl.key, missing)
        y = np.zeros(pl.shape[0], dtype=pl.dtype)
        for st in states:
            if st.result is not None:
                lo, hi = pl.block_range(st.block)
                y[lo:hi] = st.result
        status = "partial" if missing else ("degraded" if degraded else "ok")
        with self._lock:
            self._hedges += hedges
            self._failovers += failovers
        if obs.enabled():
            if hedges:
                obs.inc("fleet_hedges_total", hedges, matrix=pl.key)
            if failovers:
                obs.inc("fleet_failovers_total", failovers, matrix=pl.key)
        return y, {
            "status": status,
            "missing_blocks": missing,
            "hedges": hedges,
            "failovers": failovers,
        }

    def _discard(self, states, matrix: str) -> None:
        """Cancel or absorb abandoned submissions (late errors must die)."""
        for st in states:
            for fut in list(st.futures):
                st.futures.pop(fut, None)
                if fut.cancel():
                    if obs.enabled():
                        obs.inc(
                            "fleet_hedge_cancelled_total", 1, matrix=matrix
                        )
                else:
                    fut.add_done_callback(_absorb)

    # -- spmm --------------------------------------------------------------
    def spmm(self, matrix: str, X) -> np.ndarray:
        """Sharded ``Y = A @ X`` (failover, no hedging)."""
        pl = self.placement(matrix)
        X = np.ascontiguousarray(np.asarray(X, dtype=pl.dtype))
        if X.ndim != 2 or X.shape[0] != pl.shape[1]:
            raise ValueError(
                f"X must have shape ({pl.shape[1]}, k), got {X.shape}"
            )
        self._fire_shard_faults()
        with obs.span("fleet.spmm", matrix=matrix, k=X.shape[1]):
            Y = np.zeros((pl.shape[0], X.shape[1]), dtype=pl.dtype)
            missing: list[int] = []
            for b in range(pl.nblocks):
                block_y = self._spmm_block(pl, b, X)
                if block_y is None:
                    missing.append(b)
                    continue
                lo, hi = pl.block_range(b)
                Y[lo:hi] = block_y
        if missing and not self.allow_partial:
            raise FleetDegraded(matrix, missing)
        return Y

    def _spmm_block(self, pl, block: int, X):
        for sid in pl.replicas[block]:
            if not self._shard_usable(sid):
                continue
            try:
                return self.fleet.shard(sid).spmm(pl.key, block, X).result()
            except ShardDown as exc:
                self._mark_down(sid, str(exc))
            except Exception:  # noqa: BLE001 - walk the chain
                continue
        return None

    # -- solvers over the routed operator ---------------------------------
    def operator(self, matrix: str) -> RoutedOperator:
        return RoutedOperator(self, matrix)

    def solve(
        self,
        matrix: str,
        b,
        *,
        method: str = "cg",
        tol: float = 1e-8,
        max_iter: int | None = None,
    ) -> dict:
        """CG over the routed operator — bitwise the single-server solve."""
        if method != "cg":
            raise ValueError(f"unknown solve method {method!r}; use 'cg'")
        from repro.solvers import conjugate_gradient

        b = np.asarray(b)
        t0 = time.perf_counter()
        with obs.span("fleet.solve", matrix=matrix, method=method):
            res = conjugate_gradient(
                self.operator(matrix), b, tol=tol, max_iter=max_iter
            )
        dt = time.perf_counter() - t0
        if obs.enabled():
            obs.observe_summary("serve_solve_seconds", dt, matrix=matrix)
            obs.inc("serve_solves_total", 1, matrix=matrix, method=method)
        return {
            "x": res.x,
            "iterations": res.iterations,
            "residual_norm": float(res.residual_norm),
            "converged": bool(res.converged),
            "spmv_count": res.spmv_count,
            "seconds": dt,
        }

    def eigsh(
        self,
        matrix: str,
        *,
        num_eigenvalues: int = 1,
        tol: float = 1e-8,
        max_iter: int = 200,
        seed: int = 0,
    ) -> dict:
        """Lanczos over the routed operator."""
        from repro.solvers import lanczos

        t0 = time.perf_counter()
        with obs.span("fleet.solve", matrix=matrix, method="lanczos"):
            res = lanczos(
                self.operator(matrix),
                num_eigenvalues=num_eigenvalues,
                tol=tol,
                max_iter=max_iter,
                seed=seed,
            )
        dt = time.perf_counter() - t0
        if obs.enabled():
            obs.observe_summary("serve_solve_seconds", dt, matrix=matrix)
            obs.inc("serve_solves_total", 1, matrix=matrix, method="lanczos")
        return {
            "eigenvalues": res.eigenvalues,
            "iterations": res.iterations,
            "residual_norms": res.residual_norms,
            "spmv_count": res.spmv_count,
            "seconds": dt,
        }

    # -- autoscaling hook --------------------------------------------------
    def attach_autoscaler(self, autoscaler, monitor=None) -> None:
        """Attach an :class:`~repro.serve.autoscale.Autoscaler` (and its
        monitor) so their state shows up in ``stats()``/``/fleetz``."""
        self.autoscaler = autoscaler
        self.monitor = monitor

    def shard_queue_depths(self) -> dict:
        """Live per-shard queue depth (publishes the fleet gauge)."""
        depths: dict[int, int] = {}
        for row in self._shard_rows():
            if row.get("alive"):
                depths[row["shard"]] = int(row.get("queue_depth", 0))
        return depths

    # -- introspection / lifecycle ----------------------------------------
    def _shard_rows(self) -> list[dict]:
        rows = []
        for s in self.fleet.shards:
            if s.alive and s.shard_id not in self._down:
                try:
                    row = s.stats()
                except Exception as exc:  # noqa: BLE001 - went down mid-poll
                    self._mark_down(s.shard_id, str(exc))
                    row = {"shard": s.shard_id, "alive": False,
                           "reason": str(exc)}
            else:
                row = {
                    "shard": s.shard_id,
                    "alive": False,
                    "reason": self._down.get(s.shard_id, "dead"),
                }
            rows.append(row)
            if obs.enabled():
                obs.set_gauge(
                    "fleet_queue_depth",
                    float(row.get("queue_depth", 0) if row.get("alive") else 0),
                    shard=str(s.shard_id),
                )
        if obs.enabled():
            obs.set_gauge(
                "fleet_shards_alive",
                float(sum(1 for r in rows if r.get("alive"))),
            )
        return rows

    def stats(self) -> dict:
        with self._lock:
            requests = dict(self._status)
            hedges, failovers = self._hedges, self._failovers
            down = dict(self._down)
        q = self._latency.snapshot()
        out = {
            "fleet": True,
            "mode": self.fleet.mode,
            "nshards": self.fleet.nshards,
            "replicas": self.replicas,
            "requests": requests,
            "hedges": hedges,
            "failovers": failovers,
            "latency_ms": {str(k): v * 1e3 for k, v in q.items()},
            "down": {str(k): v for k, v in down.items()},
            "shards": self._shard_rows(),
            "placements": {
                name: pl.describe() for name, pl in self._placements.items()
            },
        }
        if self.autoscaler is not None:
            out["autoscaler"] = self.autoscaler.state()
        if self.monitor is not None:
            out["slo"] = self.monitor.state()
        return out

    def health(self) -> dict:
        rows = self._shard_rows()
        alive = [r["shard"] for r in rows if r.get("alive")]
        dead = [r["shard"] for r in rows if not r.get("alive")]
        return {
            "status": "ok" if not dead else ("degraded" if alive else "down"),
            "queue_depth": sum(
                int(r.get("queue_depth", 0)) for r in rows if r.get("alive")
            ),
            "resident": self.names(),
            "shards_alive": alive,
            "shards_down": dead,
        }

    def close(self) -> None:
        if self.autoscaler is not None:
            self.autoscaler.stop()
        if self.monitor is not None:
            self.monitor.stop()
        self.fleet.close()

    def __enter__(self) -> "FleetRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _absorb(fut) -> None:
    """Swallow a discarded submission's outcome (late errors must die)."""
    if fut.cancelled():
        return
    fut.exception()
