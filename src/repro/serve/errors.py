"""Error taxonomy of the serving subsystem.

Every failure a client can observe maps to exactly one exception type
(and, through the HTTP front-end, one status code):

============================  ======  =====================================
exception                     HTTP    meaning
============================  ======  =====================================
:class:`MatrixNotFound`       404     no registered matrix under that name
:class:`ServerOverloaded`     503     admission control refused the request
:class:`DeadlineExceeded`     504     the request's deadline expired queued
:class:`ServerClosed`         503     the server is shutting down
:class:`RegistryLoadFailed`   503     the matrix loader failed (retryable)
:class:`ShardDown`            503     a fleet shard is dead (failover ran)
:class:`FleetDegraded`        503     no replica could answer a row block
============================  ======  =====================================

All inherit :class:`ServeError`, so front-ends can catch the whole
family with one handler while tests assert the precise subtype.
"""

from __future__ import annotations

__all__ = [
    "ServeError",
    "MatrixNotFound",
    "ServerOverloaded",
    "DeadlineExceeded",
    "ServerClosed",
    "RegistryLoadFailed",
    "ShardDown",
    "FleetDegraded",
]


class ServeError(RuntimeError):
    """Base class for all serving-layer failures."""

    #: HTTP status the front-end maps this error family to
    http_status = 500

    #: trace id of the request that failed, when it was traced — the
    #: HTTP front-end stamps this before serialising so an error
    #: response still points at its causal tree (``repro obs trace``)
    trace_id: str | None = None

    def with_trace(self, trace_id: str | None) -> "ServeError":
        if trace_id:
            self.trace_id = trace_id
        return self


class MatrixNotFound(ServeError):
    """The named matrix is not registered (and no loader can produce it)."""

    http_status = 404

    def __init__(self, name: str, available: list[str] | None = None):
        self.name = name
        self.available = list(available or [])
        hint = f"; registered: {self.available}" if self.available else ""
        super().__init__(f"no matrix registered under {name!r}{hint}")


class ServerOverloaded(ServeError):
    """Admission control rejected (or shed) the request.

    ``reason`` distinguishes a fast-fail rejection (``"queue full"``,
    the *reject* policy) from a victim of the *shed-oldest* policy
    (``"shed"``) and a bounded *block* wait that timed out.
    """

    http_status = 503

    def __init__(self, reason: str, depth: int, limit: int):
        self.reason = reason
        self.depth = depth
        self.limit = limit
        super().__init__(
            f"server overloaded ({reason}): queue depth {depth} >= limit {limit}"
        )


class DeadlineExceeded(ServeError):
    """The request's deadline expired before a worker picked it up."""

    http_status = 504

    def __init__(self, waited_s: float, deadline_s: float):
        self.waited_s = waited_s
        self.deadline_s = deadline_s
        super().__init__(
            f"deadline exceeded: waited {waited_s * 1e3:.2f} ms, "
            f"deadline was {deadline_s * 1e3:.2f} ms"
        )


class ServerClosed(ServeError):
    """Submit was called on (or a request was pending in) a closed server."""

    http_status = 503

    def __init__(self, what: str = "server is closed"):
        super().__init__(what)


class RegistryLoadFailed(ServeError):
    """The loader (or binder) for a registered matrix raised.

    Transient by definition — the spec stays registered and the next
    :meth:`~repro.serve.registry.MatrixRegistry.acquire` retries the
    load — so clients with a :class:`~repro.faults.retry.RetryPolicy`
    resubmit on it.  ``__cause__`` carries the original exception.
    """

    http_status = 503

    def __init__(self, name: str, reason: str = ""):
        self.name = name
        self.reason = reason
        tail = f": {reason}" if reason else ""
        super().__init__(f"loading matrix {name!r} failed{tail}")


class ShardDown(ServeError):
    """A fleet shard process is dead (crashed, killed, or unreachable).

    Raised by a shard handle on submission to a dead shard and set on
    every future that was in flight when the shard died.  The router
    treats it as a failover trigger, not a request failure: surviving
    replicas answer the row block, and only when *no* replica is left
    does the request degrade (see :class:`FleetDegraded`).
    """

    http_status = 503

    def __init__(self, shard_id: int, reason: str = ""):
        self.shard_id = shard_id
        self.reason = reason
        tail = f": {reason}" if reason else ""
        super().__init__(f"shard {shard_id} is down{tail}")


class FleetDegraded(ServeError):
    """Every replica of at least one row block failed to answer.

    Raised only when the router runs with ``allow_partial=False``;
    with partial answers enabled the router zero-fills the missing
    blocks and reports ``status="partial"`` instead of raising.
    """

    http_status = 503

    def __init__(self, matrix: str, blocks: list[int]):
        self.matrix = matrix
        self.blocks = list(blocks)
        super().__init__(
            f"no replica answered row block(s) {self.blocks} of {matrix!r}"
        )
