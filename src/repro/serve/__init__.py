"""repro.serve — concurrent SpMV serving: registry, batching, admission.

The serving subsystem turns the repo's batch primitives into a
long-lived process that can take heavy concurrent traffic:

* :mod:`repro.serve.registry` — named pool of resident, autotuned
  :class:`~repro.engine.bound.BoundMatrix` handles; refcounted leases
  and byte-budget LRU eviction (in-use matrices are never evicted).
* :mod:`repro.serve.scheduler` — the micro-batcher: concurrent
  ``spmv(name, x)`` requests per matrix coalesce (``max_batch`` /
  ``max_delay_ms`` window) into single ``spmm`` calls on a worker pool
  — the Eq. (1) bandwidth argument applied to serving.  Admission
  control bounds the queue with ``block`` / ``reject`` / ``shed-oldest``
  backpressure and enforces per-request deadlines before work reaches
  a worker.
* :mod:`repro.serve.client` — the in-process API (``spmv``, ``solve``,
  ``eigsh``, ``stats``).
* :mod:`repro.serve.http` — stdlib JSON endpoint (``repro serve
  --port N``): ``/v1/spmv``, ``/v1/solve``, ``/healthz``, ``/statz``.
* :mod:`repro.serve.errors` — the error taxonomy
  (:class:`ServerOverloaded`, :class:`DeadlineExceeded`, ...), each
  mapped to one HTTP status.

See ``docs/serving.md`` for architecture, window semantics and the
metrics table.
"""

from repro.serve.client import Client
from repro.serve.errors import (
    DeadlineExceeded,
    MatrixNotFound,
    RegistryLoadFailed,
    ServeError,
    ServerClosed,
    ServerOverloaded,
)
from repro.serve.http import make_http_server, run_http_server
from repro.serve.registry import MatrixLease, MatrixRegistry, MatrixSpec
from repro.serve.scheduler import POLICIES, SpMVServer

__all__ = [
    "Client",
    "DeadlineExceeded",
    "MatrixLease",
    "MatrixNotFound",
    "MatrixRegistry",
    "MatrixSpec",
    "POLICIES",
    "RegistryLoadFailed",
    "ServeError",
    "ServerClosed",
    "ServerOverloaded",
    "SpMVServer",
    "make_http_server",
    "run_http_server",
]
