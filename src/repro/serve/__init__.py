"""repro.serve — concurrent SpMV serving: registry, batching, fleet.

The serving subsystem turns the repo's batch primitives into a
long-lived process that can take heavy concurrent traffic:

* :mod:`repro.serve.registry` — named pool of resident, autotuned
  :class:`~repro.engine.bound.BoundMatrix` handles; refcounted leases
  and byte-budget LRU eviction (in-use matrices are never evicted).
* :mod:`repro.serve.scheduler` — the micro-batcher: concurrent
  ``spmv(name, x)`` requests per matrix coalesce (``max_batch`` /
  ``max_delay_ms`` window) into single ``spmm`` calls on a worker pool
  — the Eq. (1) bandwidth argument applied to serving.  Admission
  control bounds the queue with ``block`` / ``reject`` / ``shed-oldest``
  backpressure and enforces per-request deadlines before work reaches
  a worker; :meth:`~repro.serve.scheduler.SpMVServer.resize_workers`
  is the autoscaler's actuator.
* :mod:`repro.serve.client` — the in-process API (``spmv``, ``solve``,
  ``eigsh``, ``stats``).
* :mod:`repro.serve.fleet` / :mod:`repro.serve.router` /
  :mod:`repro.serve.autoscale` — the sharded fleet: N shard hosts
  (processes or threads) each owning nnz-balanced row blocks of the
  registered matrices, a consistent-hash :class:`FleetRouter` doing
  scatter/gather spmv with replica failover and hedging, and an
  SLO-burn-driven :class:`Autoscaler` resizing shard worker pools
  (``repro serve --fleet N``).
* :mod:`repro.serve.http` — stdlib JSON endpoint (``repro serve
  --port N``): ``/v1/spmv``, ``/v1/solve``, ``/healthz``, ``/statz``,
  ``/fleetz``.
* :mod:`repro.serve.errors` — the error taxonomy
  (:class:`ServerOverloaded`, :class:`DeadlineExceeded`,
  :class:`ShardDown`, ...), each mapped to one HTTP status.

See ``docs/serving.md`` and ``docs/fleet.md`` for architecture,
window semantics and the metrics tables.
"""

from repro.serve.autoscale import AutoscalePolicy, Autoscaler
from repro.serve.client import Client
from repro.serve.errors import (
    DeadlineExceeded,
    FleetDegraded,
    MatrixNotFound,
    RegistryLoadFailed,
    ServeError,
    ServerClosed,
    ServerOverloaded,
    ShardDown,
)
from repro.serve.fleet import Fleet, ShardConfig
from repro.serve.http import make_http_server, run_http_server
from repro.serve.registry import MatrixLease, MatrixRegistry, MatrixSpec
from repro.serve.router import FleetRouter, HashRing, Placement, RoutedOperator
from repro.serve.scheduler import POLICIES, SpMVServer

__all__ = [
    "AutoscalePolicy",
    "Autoscaler",
    "Client",
    "DeadlineExceeded",
    "Fleet",
    "FleetDegraded",
    "FleetRouter",
    "HashRing",
    "MatrixLease",
    "MatrixNotFound",
    "MatrixRegistry",
    "MatrixSpec",
    "POLICIES",
    "Placement",
    "RegistryLoadFailed",
    "RoutedOperator",
    "ServeError",
    "ServerClosed",
    "ServerOverloaded",
    "ShardConfig",
    "ShardDown",
    "SpMVServer",
    "make_http_server",
    "run_http_server",
]
