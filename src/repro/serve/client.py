"""In-process client API for the serving subsystem.

The :class:`Client` is the programmatic front-end the HTTP endpoint is
a thin JSON shim over: ``spmv`` goes through the micro-batching
scheduler (so concurrent in-process callers coalesce exactly like HTTP
traffic), ``solve`` runs the iterative solvers against a leased,
worker-private clone of the registered matrix.

Solves are *not* micro-batched: a CG run is thousands of dependent
SpMVs, so there is nothing to coalesce across requests — instead each
solve leases the matrix (pinning it against eviction for the whole
run) and iterates through the allocation-free
:func:`~repro.engine.bound.make_spmv_operator` machinery the solvers
already use for bound matrices.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, wait
from contextlib import contextmanager

import numpy as np

from repro import obs
from repro.serve.scheduler import SpMVServer

__all__ = ["Client", "RETRYABLE"]


def _retryable() -> tuple:
    """Exception types a client may transparently resubmit on.

    Transient by construction: injected faults (the chaos harness),
    admission rejections/sheds, and registry load failures.  Deadline
    expiry and closed servers are *not* retryable — resubmitting can
    never help.
    """
    from repro.faults import FaultError
    from repro.serve.errors import RegistryLoadFailed, ServerOverloaded

    return (FaultError, ServerOverloaded, RegistryLoadFailed)


RETRYABLE = _retryable()


class Client:
    """Typed convenience wrapper around one :class:`SpMVServer`.

    ``retry`` (a :class:`~repro.faults.retry.RetryPolicy`) makes
    :meth:`spmv` resubmit requests that failed with a transient error
    (see :data:`RETRYABLE`); the exhausted case raises
    :class:`~repro.faults.retry.RetryExhausted` with the full fault
    history.
    """

    def __init__(self, server: SpMVServer, *, retry=None):
        self.server = server
        self.retry = retry
        #: trace id of the most recent traced front-end call on this
        #: client (best-effort under concurrency; a convenience for
        #: ``repro obs trace`` and tests, not a correctness surface)
        self.last_trace_id: str | None = None
        self._hedge_lock = threading.Lock()
        #: outcome accounting for abandoned hedge submissions — a
        #: losing hedge must never surface its late error through the
        #: winning call (see :meth:`spmv_hedged`)
        self.hedge_outcomes = {"cancelled": 0, "late_ok": 0, "late_error": 0}

    @contextmanager
    def _front_span(self, name: str, **attrs):
        """Front-end span: the trace root when no caller span is open."""
        with obs.span(name, **attrs) as sp:
            tid = getattr(sp, "trace_id", "") or None
            if tid:
                self.last_trace_id = tid
            yield sp

    # -- matvec ------------------------------------------------------------
    def spmv(
        self,
        matrix: str,
        x,
        *,
        deadline_ms: float | None = None,
        timeout: float | None = None,
    ) -> np.ndarray:
        """Blocking ``y = A @ x`` through the batching scheduler.

        With a ``retry`` policy, transiently failed requests are
        resubmitted (fresh deadline per attempt) with the policy's
        backoff between attempts.  Under instrumentation the call is a
        trace front-end: every submission (including retries) lands in
        one trace rooted at ``client.spmv``.
        """
        with self._front_span("client.spmv", matrix=matrix):
            if self.retry is None:
                return self.server.spmv(
                    matrix, x, deadline_ms=deadline_ms, timeout=timeout
                )
            from repro.faults.retry import call_with_retry

            def _on_retry(attempt: int, exc: Exception) -> None:
                if obs.enabled():
                    obs.inc(
                        "serve_client_retries_total",
                        1,
                        matrix=matrix,
                        error=type(exc).__name__,
                    )
                    obs.annotate_current(
                        retried=attempt, retry_error=type(exc).__name__
                    )

            return call_with_retry(
                lambda: self.server.spmv(
                    matrix, x, deadline_ms=deadline_ms, timeout=timeout
                ),
                self.retry,
                site=f"client.spmv[{matrix}]",
                retryable=RETRYABLE,
                on_retry=_on_retry,
            )

    def spmv_async(self, matrix: str, x, *, deadline_ms: float | None = None):
        """Fire-and-collect variant; returns a ``concurrent.futures.Future``."""
        return self.server.submit(matrix, x, deadline_ms=deadline_ms)

    def spmv_hedged(
        self,
        matrix: str,
        x,
        *,
        hedges: int = 1,
        hedge_delay_ms: float = 0.0,
        deadline_ms: float | None = None,
        timeout: float | None = None,
    ) -> np.ndarray:
        """Tail-latency hedging: race up to ``1 + hedges`` submissions.

        The primary request is submitted immediately; each hedge after
        ``hedge_delay_ms`` *if no earlier submission has completed*.
        The first successful result wins.  Only when **every**
        submission failed does the last error propagate — a lone slow
        or faulted request never decides the call.

        Losing submissions are *discarded* the moment a winner returns:
        still-queued ones are cancelled (the scheduler drops them before
        they reach a worker), already-running ones get their eventual
        result or error consumed by a callback.  A hedge that loses the
        race can therefore never surface its late error through a call
        that already succeeded — see :attr:`hedge_outcomes`.
        """
        if hedges < 0:
            raise ValueError(f"hedges must be >= 0, got {hedges}")
        with self._front_span("client.spmv_hedged", matrix=matrix, hedges=hedges):
            return self._spmv_hedged(
                matrix, x, hedges, hedge_delay_ms, deadline_ms, timeout
            )

    def _discard_losers(self, losers, matrix: str) -> None:
        """Cancel or absorb every abandoned hedge submission."""
        for f in losers:
            if f.cancel():
                with self._hedge_lock:
                    self.hedge_outcomes["cancelled"] += 1
                if obs.enabled():
                    obs.inc(
                        "serve_client_hedge_cancelled_total", 1, matrix=matrix
                    )
            else:
                f.add_done_callback(
                    lambda fut: self._absorb_loser(fut, matrix)
                )

    def _absorb_loser(self, fut, matrix: str) -> None:
        """Consume a losing hedge's outcome so it never propagates."""
        if fut.cancelled():
            return
        exc = fut.exception()
        key = "late_ok" if exc is None else "late_error"
        with self._hedge_lock:
            self.hedge_outcomes[key] += 1
        if obs.enabled():
            obs.inc(
                "serve_client_hedge_losses_total",
                1,
                matrix=matrix,
                outcome=key,
                error="" if exc is None else type(exc).__name__,
            )

    def _spmv_hedged(
        self, matrix, x, hedges, hedge_delay_ms, deadline_ms, timeout
    ) -> np.ndarray:
        futures = [self.server.submit(matrix, x, deadline_ms=deadline_ms)]
        deadline = None if timeout is None else time.monotonic() + timeout
        errors: list[Exception] = []

        def _remaining() -> float | None:
            if deadline is None:
                return None
            return max(deadline - time.monotonic(), 0.0)

        launched = 1
        while True:
            step = hedge_delay_ms / 1e3 if launched <= hedges else _remaining()
            done, pending = wait(futures, timeout=step, return_when=FIRST_COMPLETED)
            for f in done:
                exc = f.exception()
                if exc is None:
                    if obs.enabled() and launched > 1:
                        obs.inc("serve_client_hedges_total", launched - 1, matrix=matrix)
                    futures.remove(f)
                    self._discard_losers(futures, matrix)
                    return f.result()
                errors.append(exc)
                futures.remove(f)
            if not futures and launched > hedges:
                raise errors[-1]
            if launched <= hedges:
                futures.append(
                    self.server.submit(matrix, x, deadline_ms=deadline_ms)
                )
                launched += 1
            elif not done:
                rem = _remaining()
                if rem is not None and rem <= 0:
                    self._discard_losers(futures, matrix)
                    raise TimeoutError(
                        f"spmv_hedged({matrix!r}) timed out with "
                        f"{len(futures)} submission(s) in flight"
                    )

    # -- solvers -----------------------------------------------------------
    def solve(
        self,
        matrix: str,
        b,
        *,
        method: str = "cg",
        tol: float = 1e-8,
        max_iter: int | None = None,
    ) -> dict:
        """Solve ``A x = b`` (``method="cg"``) on a leased matrix clone.

        Returns a JSON-friendly dict (``x`` as a list through the HTTP
        shim stays an ndarray here).
        """
        if method != "cg":
            raise ValueError(f"unknown solve method {method!r}; use 'cg'")
        from repro.solvers import conjugate_gradient

        b = np.asarray(b)
        t0 = time.perf_counter()
        with self._front_span("serve.solve", matrix=matrix, method=method):
            with self.server.registry.acquire(matrix) as lease:
                bound = lease.clone_for(("solve", threading.get_ident()))
                res = conjugate_gradient(
                    bound, b, tol=tol, max_iter=max_iter
                )
        dt = time.perf_counter() - t0
        if obs.enabled():
            obs.observe_summary("serve_solve_seconds", dt, matrix=matrix)
            obs.inc("serve_solves_total", 1, matrix=matrix, method=method)
        return {
            "x": res.x,
            "iterations": res.iterations,
            "residual_norm": float(res.residual_norm),
            "converged": bool(res.converged),
            "spmv_count": res.spmv_count,
            "seconds": dt,
        }

    def eigsh(
        self,
        matrix: str,
        *,
        num_eigenvalues: int = 1,
        tol: float = 1e-8,
        max_iter: int = 200,
        seed: int = 0,
    ) -> dict:
        """Smallest eigenvalues via Lanczos on a leased matrix clone."""
        from repro.solvers import lanczos

        t0 = time.perf_counter()
        with self._front_span("serve.solve", matrix=matrix, method="lanczos"):
            with self.server.registry.acquire(matrix) as lease:
                bound = lease.clone_for(("solve", threading.get_ident()))
                res = lanczos(
                    bound,
                    num_eigenvalues=num_eigenvalues,
                    tol=tol,
                    max_iter=max_iter,
                    seed=seed,
                )
        dt = time.perf_counter() - t0
        if obs.enabled():
            obs.observe_summary("serve_solve_seconds", dt, matrix=matrix)
            obs.inc("serve_solves_total", 1, matrix=matrix, method="lanczos")
        return {
            "eigenvalues": res.eigenvalues,
            "iterations": res.iterations,
            "residual_norms": res.residual_norms,
            "spmv_count": res.spmv_count,
            "seconds": dt,
        }

    # -- operator protocol -------------------------------------------------
    def operator(
        self,
        matrix: str,
        *,
        deadline_ms: float | None = None,
        timeout: float | None = None,
    ):
        """View a registered matrix as a :class:`repro.ops.LinearOperator`.

        Every ``apply`` of the returned operator goes through the
        micro-batching scheduler, so solver iterations from concurrent
        clients coalesce exactly like HTTP traffic — and any code
        written against the operator protocol (including the package's
        own solvers) runs against the served matrix unchanged.
        """
        from repro.ops.adapters import ServeOperator

        return ServeOperator(
            self, matrix, deadline_ms=deadline_ms, timeout=timeout
        )

    # -- introspection / lifecycle -----------------------------------------
    def names(self) -> list[str]:
        """All registered matrix names (the HTTP banner + 404 hints)."""
        return self.server.registry.names()

    def close(self) -> None:
        """Shut the underlying server down (drains the queue)."""
        self.server.close()

    def stats(self) -> dict:
        return self.server.stats()

    def health(self) -> dict:
        s = self.server
        return {
            "status": "closing" if s.stats()["closing"] else "ok",
            "queue_depth": s.queue_depth,
            "resident": s.registry.resident(),
        }
