"""Micro-batching SpMV scheduler with admission control.

The serving argument is the paper's Eq. (1) argument run backwards:
SpMV is bandwidth-bound, so *k* concurrent ``A @ x`` requests against
the same matrix cost nearly the same memory traffic as one — if they
are executed as a single block product ``A @ [x_1 .. x_k]``.  The
scheduler therefore coalesces concurrent requests per matrix into
micro-batches (up to ``max_batch`` vectors or a ``max_delay_ms``
deadline, whichever comes first) and runs each batch as **one**
:meth:`~repro.engine.bound.BoundMatrix.spmm` call on a worker-private
clone, scattering the result columns back to per-request futures.

Admission control in front of the batcher keeps overload from turning
into unbounded queueing: the pending-request count is capped at
``max_queue`` with three backpressure policies —

* ``block``   — the submitting thread waits for space (optionally
  bounded by ``admission_timeout_s``),
* ``reject``  — fail fast with :class:`~repro.serve.errors.ServerOverloaded`,
* ``shed-oldest`` — admit the newcomer, fail the oldest queued request
  (freshest-work-wins, the classic head-drop queue).

Per-request deadlines are enforced *before* work reaches a worker: an
expired request is completed with
:class:`~repro.serve.errors.DeadlineExceeded` at pop time and never
stacked into a batch.

**Degraded mode.**  When every batcher worker has died (chaos tests
kill them with ``worker_crash`` faults; real deployments hit the same
path on unexpected worker exceptions) the server sheds to a
single-threaded, *unbatched* fallback loop instead of hanging the
queue: requests are popped one at a time, oldest first, and executed
as plain ``spmv`` calls on a dedicated clone.  Deadlines keep their
exact semantics in degraded mode — an expired request maps to
:class:`~repro.serve.errors.DeadlineExceeded` (504) at pop time, never
to a generic :class:`~repro.serve.errors.ServeError`.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future

import numpy as np

from repro import obs
from repro.obs.metrics import Summary
from repro.serve.errors import (
    DeadlineExceeded,
    MatrixNotFound,
    ServerClosed,
    ServerOverloaded,
)
from repro.serve.registry import MatrixRegistry

__all__ = ["SpMVServer", "POLICIES"]

POLICIES = ("block", "reject", "shed-oldest")

_STATUSES = ("ok", "rejected", "shed", "expired", "error", "cancelled")


class _Request:
    __slots__ = ("matrix", "x", "future", "t_submit", "t_deadline", "ctx")

    def __init__(
        self,
        matrix: str,
        x: np.ndarray,
        t_submit: float,
        t_deadline: float | None,
        ctx=None,
    ):
        self.matrix = matrix
        self.x = x
        self.future: "Future[np.ndarray]" = Future()
        self.t_submit = t_submit
        self.t_deadline = t_deadline
        #: :class:`~repro.obs.spans.SpanContext` captured at submit —
        #: the front-end span + trace this request belongs to
        self.ctx = ctx


class SpMVServer:
    """Concurrent SpMV front door: admission → micro-batches → workers.

    Parameters
    ----------
    registry:
        The :class:`~repro.serve.registry.MatrixRegistry` requests are
        resolved against.
    max_batch:
        Most vectors coalesced into one ``spmm`` call.
    max_delay_ms:
        Longest a request waits for batch-mates before the partial
        batch is dispatched anyway (the batching window).
    max_queue:
        Admission bound on *queued* (not yet dispatched) requests.
    policy:
        Backpressure policy: ``block`` / ``reject`` / ``shed-oldest``.
    workers:
        Worker threads executing batches (each uses a private
        :meth:`~repro.engine.bound.BoundMatrix.clone`).
    autostart:
        ``False`` leaves the workers unstarted (requests queue up)
        until :meth:`start` — deterministic batch formation for tests.
    faults:
        Optional :class:`~repro.faults.inject.FaultInjector`; its
        serve-layer events fire at the worker loop (``worker_crash``,
        ``slow_worker``) and batch-execution (``kernel_exception``)
        sites.
    """

    def __init__(
        self,
        registry: MatrixRegistry,
        *,
        max_batch: int = 16,
        max_delay_ms: float = 1.0,
        max_queue: int = 256,
        policy: str = "block",
        workers: int = 2,
        autostart: bool = True,
        faults=None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_ms < 0:
            raise ValueError(f"max_delay_ms must be >= 0, got {max_delay_ms}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.registry = registry
        self.max_batch = max_batch
        self.max_delay_s = max_delay_ms / 1e3
        self.max_queue = max_queue
        self.policy = policy
        self.num_workers = workers

        self.faults = faults

        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._pending: "OrderedDict[str, deque[_Request]]" = OrderedDict()
        self._depth = 0
        self._closing = False
        self._threads: list[threading.Thread] = []
        self._started = False
        #: workers asked to retire by :meth:`resize_workers` (shrink)
        self._retire = 0
        self._next_worker_idx = 0

        # resilience state: worker deaths and the degraded fallback
        self._live_workers = 0
        self._worker_deaths: list[tuple[int, str]] = []
        self._degraded = False
        self._degraded_thread: threading.Thread | None = None
        self._degraded_requests = 0

        # own (obs-independent) accounting so /statz works with obs off
        self._status_counts = dict.fromkeys(_STATUSES, 0)
        self._batches = 0
        self._spmm_calls = 0
        self._batched_vectors = 0
        self._latency = Summary(window=4096)
        self._latency_degraded = Summary(window=4096)
        self._per_matrix: dict[str, dict] = {}

        self._clock = time.perf_counter
        if autostart:
            self.start()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SpMVServer":
        """Start the worker pool (idempotent)."""
        with self._lock:
            if self._closing:
                raise ServerClosed("cannot start a closed server")
            if self._started:
                return self
            self._started = True
            self._live_workers = self.num_workers
            self._next_worker_idx = self.num_workers
        for i in range(self.num_workers):
            self._spawn_worker(i)
        return self

    def _spawn_worker(self, idx: int) -> None:
        t = threading.Thread(
            target=self._worker, args=(idx,), name=f"serve-worker-{idx}",
            daemon=True,
        )
        self._threads.append(t)
        t.start()

    def resize_workers(self, n: int) -> int:
        """Grow or shrink the worker pool to ``n`` threads (autoscaler hook).

        Growing spawns fresh workers immediately (new thread indices, so
        per-worker clone caches stay coherent).  Shrinking retires the
        surplus cooperatively: workers check a retire counter at the top
        of batch formation and exit cleanly before taking more work —
        in-flight batches always complete.  Returns the applied delta
        (positive = spawned, negative = retiring).  Growing a degraded
        server restores a live batcher pool alongside the fallback loop
        (both drain the same queue under the same lock).
        """
        if n < 1:
            raise ValueError(f"workers must be >= 1, got {n}")
        spawn: list[int] = []
        with self._lock:
            if self._closing:
                raise ServerClosed("cannot resize a closed server")
            self.num_workers = n
            if not self._started:
                return 0
            effective = self._live_workers - self._retire
            delta = n - effective
            if delta > 0:
                # cancel pending retirements first, then spawn the rest
                cancelled = min(self._retire, delta)
                self._retire -= cancelled
                spawn = [
                    self._next_worker_idx + i
                    for i in range(delta - cancelled)
                ]
                self._next_worker_idx += len(spawn)
                self._live_workers += len(spawn)
            elif delta < 0:
                self._retire += -delta
                self._ready.notify_all()
        for idx in spawn:
            self._spawn_worker(idx)
        return delta

    def close(self, *, drain: bool = True, timeout: float | None = 10.0) -> None:
        """Stop accepting requests; drain (default) or fail the queue."""
        with self._lock:
            self._closing = True
            if not drain:
                self._fail_all_pending_locked(ServerClosed("server closed"))
            self._ready.notify_all()
            self._not_full.notify_all()
        started = self._started
        for t in self._threads:
            t.join(timeout=timeout)
        dt = self._degraded_thread
        if dt is not None:
            dt.join(timeout=timeout)
        with self._lock:
            # workers gone (or never started): nothing will serve leftovers
            alive = self._degraded and dt is not None and dt.is_alive()
            if (not started or drain) and not alive:
                self._fail_all_pending_locked(ServerClosed("server closed"))

    def _fail_all_pending_locked(self, exc: Exception) -> None:
        for dq in self._pending.values():
            while dq:
                req = dq.popleft()
                self._depth -= 1
                if not req.future.done():
                    req.future.set_exception(exc)
                    self._count_locked(req.matrix, "error")
        self._publish_depth_locked()

    def __enter__(self) -> "SpMVServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # submission / admission control
    # ------------------------------------------------------------------
    def submit(
        self,
        matrix: str,
        x,
        *,
        deadline_ms: float | None = None,
        admission_timeout_s: float | None = None,
    ) -> "Future[np.ndarray]":
        """Queue one ``y = A @ x`` request; returns a future for ``y``.

        ``deadline_ms`` bounds total queueing time: a request still
        queued when it expires completes exceptionally with
        :class:`DeadlineExceeded` and is never executed.
        ``admission_timeout_s`` bounds the wait under the ``block``
        policy (``None`` = wait until space or close).
        """
        if not self.registry.has(matrix):
            raise MatrixNotFound(matrix, self.registry.names())
        x = np.asarray(x)
        if x.ndim != 1:
            raise ValueError(f"x must be 1-D, got shape {x.shape}")
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {deadline_ms}")
        now = self._clock()
        ctx = None
        if obs.enabled():
            # capture the front-end span + trace; a bare submit (no
            # span open) still gets a trace id so the batch span can
            # link back to this request
            ctx = obs.capture_context()
            if ctx.trace_id is None:
                ctx = obs.SpanContext(ctx.span_id, obs.new_trace_id())
        req = _Request(
            matrix,
            x,
            now,
            None if deadline_ms is None else now + deadline_ms / 1e3,
            ctx,
        )
        with self._lock:
            self._admit_locked(req, admission_timeout_s)
            self._pending.setdefault(matrix, deque()).append(req)
            self._depth += 1
            self._publish_depth_locked()
            self._ready.notify()
        return req.future

    def spmv(self, matrix: str, x, *, deadline_ms: float | None = None,
             timeout: float | None = None) -> np.ndarray:
        """Synchronous convenience: submit and wait for the result."""
        return self.submit(matrix, x, deadline_ms=deadline_ms).result(timeout)

    def _admit_locked(
        self, req: _Request, admission_timeout_s: float | None
    ) -> None:
        if self._closing:
            raise ServerClosed()
        if self._depth < self.max_queue:
            return
        if self.policy == "reject":
            self._count_locked(req.matrix, "rejected")
            raise ServerOverloaded("queue full", self._depth, self.max_queue)
        if self.policy == "shed-oldest":
            while self._depth >= self.max_queue:
                victim = self._pop_oldest_locked()
                if victim is None:  # pragma: no cover - depth implies one
                    break
                victim.future.set_exception(
                    ServerOverloaded("shed", self._depth + 1, self.max_queue)
                )
                self._count_locked(victim.matrix, "shed")
            self._publish_depth_locked()
            return
        # block
        limit = (
            None
            if admission_timeout_s is None
            else self._clock() + admission_timeout_s
        )
        while self._depth >= self.max_queue:
            if self._closing:
                raise ServerClosed()
            remaining = None if limit is None else limit - self._clock()
            if remaining is not None and remaining <= 0:
                self._count_locked(req.matrix, "rejected")
                raise ServerOverloaded(
                    "block timeout", self._depth, self.max_queue
                )
            self._not_full.wait(timeout=remaining)

    def _pop_oldest_locked(self) -> _Request | None:
        victim_dq = None
        for dq in self._pending.values():
            if dq and (victim_dq is None or dq[0].t_submit < victim_dq[0].t_submit):
                victim_dq = dq
        if victim_dq is None:
            return None
        self._depth -= 1
        return victim_dq.popleft()

    # ------------------------------------------------------------------
    # batch formation
    # ------------------------------------------------------------------
    def _expire_locked(self, now: float) -> None:
        """Fail queued requests whose deadline passed (never executed).

        Cancelled requests (an abandoned hedge whose sibling already
        won) are dropped here too — they must never reach a worker nor
        count toward queue depth once the caller has let go.
        """
        for dq in self._pending.values():
            alive: deque[_Request] = deque()
            while dq:
                req = dq.popleft()
                if req.future.cancelled():
                    self._depth -= 1
                    self._count_locked(req.matrix, "cancelled")
                elif req.t_deadline is not None and now >= req.t_deadline:
                    self._depth -= 1
                    waited = now - req.t_submit
                    req.future.set_exception(
                        DeadlineExceeded(waited, req.t_deadline - req.t_submit)
                    )
                    self._count_locked(req.matrix, "expired")
                    if obs.enabled():
                        obs.inc(
                            "serve_deadline_expired_total", 1, matrix=req.matrix
                        )
                else:
                    alive.append(req)
            dq.extend(alive)
        self._publish_depth_locked()
        self._not_full.notify_all()

    def _take_batch(self) -> tuple[str, list[_Request]] | None:
        """Block until a batch is ripe (or the server drains); pop it.

        A matrix's queue is ripe when it holds ``max_batch`` requests,
        when its oldest request has waited ``max_delay_ms``, or when
        the server is closing (drain mode).  Among ripe queues the one
        with the oldest head wins (FIFO across matrices).
        """
        with self._lock:
            while True:
                now = self._clock()
                self._expire_locked(now)
                if self._retire > 0:
                    # resize_workers shrank the pool: exit cleanly
                    self._retire -= 1
                    return None
                if self._closing and self._depth == 0:
                    self._ready.notify_all()  # wake sibling workers to exit
                    return None
                best: str | None = None
                best_t = math.inf
                next_event = math.inf
                for name, dq in self._pending.items():
                    if not dq:
                        continue
                    head = dq[0]
                    ripe_at = head.t_submit + self.max_delay_s
                    if (
                        len(dq) >= self.max_batch
                        or now >= ripe_at
                        or self._closing
                    ):
                        if head.t_submit < best_t:
                            best, best_t = name, head.t_submit
                    else:
                        next_event = min(next_event, ripe_at)
                    if head.t_deadline is not None:
                        next_event = min(next_event, head.t_deadline)
                if best is not None:
                    dq = self._pending[best]
                    reqs = [
                        dq.popleft()
                        for _ in range(min(self.max_batch, len(dq)))
                    ]
                    self._depth -= len(reqs)
                    self._publish_depth_locked()
                    self._not_full.notify_all()
                    if self._depth:
                        self._ready.notify()  # more work may be ripe
                    return best, reqs
                timeout = None if next_event is math.inf else max(
                    next_event - now, 0.0
                )
                self._ready.wait(timeout=timeout)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _worker(self, idx: int) -> None:
        try:
            while True:
                if self.faults is not None:
                    # slow_worker sleeps here; worker_crash raises
                    self.faults.worker_fault(idx)
                batch = self._take_batch()
                if batch is None:
                    break
                name, reqs = batch
                if reqs:
                    self._execute(idx, name, reqs)
        except Exception as exc:  # includes InjectedFault worker_crash
            self._on_worker_death(idx, exc)
            return
        with self._lock:
            self._live_workers -= 1  # clean drain exit

    def _on_worker_death(self, idx: int, exc: Exception) -> None:
        """Account a dead batcher worker; shed to degraded mode when the
        pool is empty (the queue must never silently hang)."""
        with self._lock:
            self._live_workers -= 1
            self._worker_deaths.append((idx, f"{type(exc).__name__}: {exc}"))
            enter_degraded = (
                self._live_workers <= 0 and not self._closing and not self._degraded
            )
            if enter_degraded:
                self._degraded = True
        if obs.enabled():
            obs.inc("serve_worker_deaths_total", 1, worker=idx)
        if enter_degraded:
            if obs.enabled():
                obs.inc("serve_degraded_entries_total", 1)
                obs.set_gauge("serve_degraded", 1)
            t = threading.Thread(
                target=self._degraded_loop, name="serve-degraded", daemon=True
            )
            with self._lock:
                self._degraded_thread = t
            t.start()

    # ------------------------------------------------------------------
    # degraded mode: unbatched per-request fallback
    # ------------------------------------------------------------------
    def _take_one(self) -> tuple[str, _Request] | None:
        """Pop the oldest queued request (degraded mode's batch former).

        Deadlines keep their exact pop-time semantics: expired requests
        are completed with :class:`DeadlineExceeded` here and never
        executed — degraded mode must not downgrade a 504 to a generic
        error.
        """
        with self._lock:
            while True:
                now = self._clock()
                self._expire_locked(now)
                if self._closing and self._depth == 0:
                    return None
                req = self._pop_oldest_locked()
                if req is not None:
                    self._publish_depth_locked()
                    self._not_full.notify_all()
                    return req.matrix, req
                next_event = math.inf
                for dq in self._pending.values():
                    if dq and dq[0].t_deadline is not None:
                        next_event = min(next_event, dq[0].t_deadline)
                timeout = None if next_event is math.inf else max(next_event - now, 0.0)
                self._ready.wait(timeout=timeout)

    def _degraded_loop(self) -> None:
        while True:
            item = self._take_one()
            if item is None:
                return
            name, req = item
            self._execute_one(name, req)

    def _execute_one(self, name: str, req: _Request) -> None:
        """Unbatched execution of one request (degraded mode).

        The degraded span attaches to the request's captured context,
        so the request's trace shows front-end → ``serve.degraded`` →
        ``engine.spmv`` — a degraded-served request is distinguishable
        from a batched one in both the trace and (via the ``degraded``
        latency label) in ``/statz``.
        """
        t_start = self._clock()
        dsp = None
        if not req.future.set_running_or_notify_cancel():
            self._count(name, "cancelled")
            return
        try:
            if req.t_deadline is not None and t_start >= req.t_deadline:
                # raced past the pop-time check: still a 504, never generic
                raise DeadlineExceeded(
                    t_start - req.t_submit, req.t_deadline - req.t_submit
                )
            with obs.attach_context(req.ctx or obs.SpanContext(None)):
                with obs.span("serve.degraded", matrix=name) as dsp:
                    if self.faults is not None:
                        self.faults.batch_fault(name, -1)
                    with self.registry.acquire(name) as lease:
                        bound = lease.clone_for("degraded")
                        x = bound.matrix.check_rhs(req.x)
                        y = bound.spmv(x)
        except DeadlineExceeded as exc:
            req.future.set_exception(exc)
            self._count(name, "expired")
            if obs.enabled():
                obs.inc("serve_deadline_expired_total", 1, matrix=name)
            return
        except Exception as exc:
            req.future.set_exception(exc)
            self._count(name, "error")
            return
        t_end = self._clock()
        latency = t_end - req.t_submit
        with self._lock:
            self._degraded_requests += 1
            self._latency.observe(latency)
            self._latency_degraded.observe(latency)
            pm = self._per_matrix_locked(name)
            pm["latency"].observe(latency)
            pm["degraded"] += 1
        self._count(name, "ok")
        if obs.enabled():
            obs.inc("serve_degraded_requests_total", 1, matrix=name)
            obs.observe_summary(
                "serve_request_seconds", latency, matrix=name, degraded="true"
            )
            obs.inc("serve_requests_total", 1, matrix=name, status="ok")
            self._record_request_span(
                dsp, req, name, t_end, None, degraded=True
            )
        req.future.set_result(y)

    def _execute(self, idx: int, name: str, reqs: list[_Request]) -> None:
        t_start = self._clock()
        # the batch span is a root of its own trace: it belongs to N
        # requests at once, so instead of picking one parent it *links*
        # to every request span it served — each request's trace tree
        # pulls the shared batch (and the kernel span under it) in
        # through the link (see repro.obs.trace)
        links: list[tuple[str, int]] = []
        with obs.span(
            "serve.batch", matrix=name, size=len(reqs), worker=idx
        ) as bsp:
            try:
                if self.faults is not None:
                    self.faults.batch_fault(name, idx)
                with self.registry.acquire(name) as lease:
                    bound = lease.clone_for(idx)
                    good: list[_Request] = []
                    cols: list[np.ndarray] = []
                    for req in reqs:
                        # claim the future; a cancelled hedge is dropped
                        # here and never stacked into the batch
                        if not req.future.set_running_or_notify_cancel():
                            self._count(name, "cancelled")
                            continue
                        try:
                            cols.append(bound.matrix.check_rhs(req.x))
                            good.append(req)
                        except Exception as exc:
                            req.future.set_exception(exc)
                            self._count(name, "error")
                            if obs.enabled():
                                self._record_request_span(
                                    bsp, req, name, self._clock(), links,
                                    status="error",
                                )
                    if not good:
                        return
                    X = np.stack(cols, axis=1)
                    Y = bound.spmm(X)
                    with self._lock:
                        self._spmm_calls += 1
            except Exception as exc:
                t_fail = self._clock()
                for req in reqs:
                    if not req.future.done():
                        req.future.set_exception(exc)
                        self._count(name, "error")
                        if obs.enabled():
                            self._record_request_span(
                                bsp, req, name, t_fail, links, status="error"
                            )
                if obs.enabled():
                    obs.inc("serve_batch_errors_total", 1, matrix=name)
                return
            t_end = self._clock()
            k = len(good)
            nnz_moved = bound.nnz * k
            with self._lock:
                self._batches += 1
                self._batched_vectors += k
                pm = self._per_matrix_locked(name)
                pm["batches"] += 1
                pm["vectors"] += k
                pm["nnz"] += nnz_moved
            if obs.enabled():
                obs.observe("serve_batch_size", k, matrix=name)
                obs.inc("serve_batches_total", 1, matrix=name)
                obs.inc("serve_nnz_total", nnz_moved, matrix=name)
                obs.observe(
                    "serve_batch_seconds", t_end - t_start, matrix=name
                )
            for i, req in enumerate(good):
                y = np.ascontiguousarray(Y[:, i])
                latency = t_end - req.t_submit
                queued = t_start - req.t_submit
                with self._lock:
                    self._latency.observe(latency)
                    pm = self._per_matrix_locked(name)
                    pm["latency"].observe(latency)
                self._count(name, "ok")
                if obs.enabled():
                    obs.observe(
                        "serve_time_in_queue_seconds", queued, matrix=name
                    )
                    obs.observe_summary(
                        "serve_request_seconds", latency, matrix=name,
                        degraded="false",
                    )
                    obs.inc(
                        "serve_requests_total", 1, matrix=name, status="ok"
                    )
                    self._record_request_span(bsp, req, name, t_end, links)
                req.future.set_result(y)

    @staticmethod
    def _record_request_span(
        bsp,
        req: _Request,
        name: str,
        t_end: float,
        links: list | None,
        *,
        status: str = "ok",
        degraded: bool = False,
    ) -> None:
        """One post-hoc span per request, in the *request's* trace.

        The span covers submit → completion and parents under the
        front-end span captured at submit (``req.ctx``), so it lives in
        the request's own trace.  When ``links`` is given (batch path)
        the executing span ``bsp`` is back-linked to the request span —
        that link is how N traces share one batch span.
        """
        if getattr(bsp, "span_id", None) is None:
            return
        from repro.obs.spans import Span, get_tracer

        tracer = get_tracer()
        ctx = req.ctx
        sid = tracer.next_id()
        sp = Span(
            name="serve.request",
            span_id=sid,
            parent_id=None if ctx is None else ctx.span_id,
            start=req.t_submit,
            end=t_end,
            thread=threading.current_thread().name,
            attrs={"matrix": name, "status": status},
            trace_id=(ctx.trace_id if ctx and ctx.trace_id else ""),
        )
        if degraded:
            sp.set_attr("degraded", True)
        tracer.add_finished(sp)
        if links is not None and sp.trace_id:
            links.append((sp.trace_id, sid))
            bsp.links = tuple(links)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _per_matrix_locked(self, name: str) -> dict:
        pm = self._per_matrix.get(name)
        if pm is None:
            pm = self._per_matrix[name] = {
                "batches": 0,
                "vectors": 0,
                "nnz": 0,
                "degraded": 0,
                "latency": Summary(window=2048),
                "status": dict.fromkeys(_STATUSES, 0),
            }
        return pm

    def _count_locked(self, name: str, status: str) -> None:
        self._status_counts[status] += 1
        self._per_matrix_locked(name)["status"][status] += 1
        if status != "ok" and obs.enabled():
            obs.inc("serve_requests_total", 1, matrix=name, status=status)

    def _count(self, name: str, status: str) -> None:
        with self._lock:
            self._count_locked(name, status)

    def _publish_depth_locked(self) -> None:
        if obs.enabled():
            obs.set_gauge("serve_queue_depth", self._depth)

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._depth

    @property
    def batches_executed(self) -> int:
        with self._lock:
            return self._batches

    @property
    def spmm_calls(self) -> int:
        with self._lock:
            return self._spmm_calls

    @property
    def degraded(self) -> bool:
        """True once the server shed to the unbatched fallback loop."""
        with self._lock:
            return self._degraded

    @property
    def live_workers(self) -> int:
        with self._lock:
            return self._live_workers

    def stats(self) -> dict:
        """JSON-friendly snapshot (the /statz payload)."""

        def _quant(s: Summary) -> dict:
            snap = s.snapshot()
            return {
                "count": s.count,
                **{
                    f"p{int(q * 100)}": (
                        None if math.isnan(v) else round(v * 1e3, 4)
                    )
                    for q, v in snap.items()
                },
            }

        with self._lock:
            per_matrix = {
                name: {
                    "batches": pm["batches"],
                    "vectors": pm["vectors"],
                    "nnz": pm["nnz"],
                    "degraded": pm["degraded"],
                    "status": dict(pm["status"]),
                    "latency_ms": _quant(pm["latency"]),
                }
                for name, pm in sorted(self._per_matrix.items())
            }
            batches = self._batches
            return {
                "queue_depth": self._depth,
                "policy": self.policy,
                "max_batch": self.max_batch,
                "max_delay_ms": self.max_delay_s * 1e3,
                "max_queue": self.max_queue,
                "workers": self.num_workers,
                "live_workers": self._live_workers,
                "retiring_workers": self._retire,
                "degraded": self._degraded,
                "degraded_requests": self._degraded_requests,
                "worker_deaths": list(self._worker_deaths),
                "closing": self._closing,
                "requests": dict(self._status_counts),
                "batches": batches,
                "spmm_calls": self._spmm_calls,
                "batched_vectors": self._batched_vectors,
                "mean_batch_size": (
                    round(self._batched_vectors / batches, 3) if batches else 0.0
                ),
                "latency_ms": _quant(self._latency),
                "latency_degraded_ms": _quant(self._latency_degraded),
                "per_matrix": per_matrix,
                "registry": self.registry.stats(),
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SpMVServer policy={self.policy} max_batch={self.max_batch} "
            f"depth={self.queue_depth} batches={self.batches_executed}>"
        )
