"""SLO-driven autoscaler for fleet shard worker pools.

The controller closes the loop between the signals the serve stack
already publishes and the one actuator the scheduler grew for it,
:meth:`~repro.serve.scheduler.SpMVServer.resize_workers`:

* **inputs** — an :class:`~repro.obs.slo.SLOMonitor` over the fleet
  SLOs (:func:`~repro.obs.slo.default_fleet_slos`: p99 latency,
  error rate, queue depth — each a burn-rate alert, not a raw
  threshold) plus the live per-shard queue depths from
  :meth:`~repro.serve.router.FleetRouter.shard_queue_depths`;
* **policy** — :class:`AutoscalePolicy`: scale *up* by ``step``
  workers on any firing SLO or per-worker queue pressure above
  ``queue_high``, scale *down* only after ``scale_down_after``
  consecutive calm evaluations below ``queue_low`` (scale-up is
  twitchy, scale-down is patient — the standard asymmetry), both
  bounded by ``[min_workers, max_workers]`` and separated by
  ``cooldown_s`` per shard;
* **outputs** — every decision is applied via
  ``shard.resize_workers``, recorded on the bounded
  :meth:`Autoscaler.decisions` log (the ``repro fleet status``
  payload), counted in ``fleet_autoscale_decisions_total`` and
  emitted as a ``fleet.autoscale`` span.

:meth:`Autoscaler.evaluate` is a pure step (injectable clock, no
thread) so tests drive it deterministically; :meth:`Autoscaler.start`
runs it on a daemon thread for ``repro serve --fleet --slo``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from repro import obs

__all__ = ["AutoscalePolicy", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalePolicy:
    """Bounds and thresholds of the scaling controller."""

    min_workers: int = 1
    max_workers: int = 4
    #: workers added (removed) per scale-up (scale-down) decision
    step: int = 1
    #: minimum seconds between decisions for the same shard
    cooldown_s: float = 10.0
    #: queued requests per worker that trigger a scale-up
    queue_high: float = 8.0
    #: queued requests per worker below which an evaluation counts calm
    queue_low: float = 1.0
    #: consecutive calm evaluations before a scale-down
    scale_down_after: int = 3

    def __post_init__(self) -> None:
        if not 1 <= self.min_workers <= self.max_workers:
            raise ValueError(
                "need 1 <= min_workers <= max_workers, got "
                f"{self.min_workers} / {self.max_workers}"
            )
        if self.step < 1:
            raise ValueError(f"step must be >= 1, got {self.step}")
        if self.queue_low > self.queue_high:
            raise ValueError("queue_low must be <= queue_high")
        if self.scale_down_after < 1:
            raise ValueError("scale_down_after must be >= 1")


class _ShardControl:
    """Per-shard controller state."""

    __slots__ = ("workers", "last_change", "calm_streak")

    def __init__(self, workers: int):
        self.workers = workers
        self.last_change = float("-inf")
        self.calm_streak = 0


class Autoscaler:
    """Grows/shrinks per-shard worker pools from SLO burn + queue depth."""

    def __init__(
        self,
        router,
        *,
        policy: AutoscalePolicy | None = None,
        monitor=None,
        clock=time.monotonic,
        max_decisions: int = 256,
    ):
        self.router = router
        self.policy = policy or AutoscalePolicy()
        self.monitor = monitor
        self._clock = clock
        self._decisions: deque[dict] = deque(maxlen=max_decisions)
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.evaluations = 0
        self._shards = {
            s.shard_id: _ShardControl(
                max(self.policy.min_workers,
                    min(s.config.workers, self.policy.max_workers))
            )
            for s in router.fleet.shards
        }

    # -- the controller step ----------------------------------------------
    def evaluate(self, now: float | None = None) -> list[dict]:
        """One control step; returns the decisions it made (maybe [])."""
        now = self._clock() if now is None else now
        firing = list(self.monitor.firing()) if self.monitor is not None else []
        depths = self.router.shard_queue_depths()
        made: list[dict] = []
        with self._lock:
            self.evaluations += 1
            for sid, ctl in self._shards.items():
                depth = depths.get(sid)
                if depth is None:  # dead or unreachable: nothing to steer
                    continue
                pressure = depth / max(ctl.workers, 1)
                want = ctl.workers
                reason = ""
                if firing or pressure >= self.policy.queue_high:
                    ctl.calm_streak = 0
                    want = min(
                        ctl.workers + self.policy.step, self.policy.max_workers
                    )
                    reason = (
                        f"slo:{','.join(firing)}" if firing
                        else f"queue pressure {pressure:.1f}"
                    )
                elif pressure <= self.policy.queue_low:
                    ctl.calm_streak += 1
                    if ctl.calm_streak >= self.policy.scale_down_after:
                        want = max(
                            ctl.workers - self.policy.step,
                            self.policy.min_workers,
                        )
                        reason = f"calm x{ctl.calm_streak}"
                else:
                    ctl.calm_streak = 0
                if want == ctl.workers:
                    continue
                if now - ctl.last_change < self.policy.cooldown_s:
                    continue
                decision = self._apply_locked(sid, ctl, want, reason, now)
                if decision is not None:
                    made.append(decision)
        return made

    def _apply_locked(self, sid, ctl, want, reason, now) -> dict | None:
        direction = "up" if want > ctl.workers else "down"
        try:
            self.router.fleet.shard(sid).resize_workers(want)
        except Exception as exc:  # noqa: BLE001 - shard died under us
            self._decisions.append(
                {
                    "t": now,
                    "shard": sid,
                    "direction": direction,
                    "from": ctl.workers,
                    "to": want,
                    "reason": reason,
                    "applied": False,
                    "error": str(exc),
                }
            )
            return None
        decision = {
            "t": now,
            "shard": sid,
            "direction": direction,
            "from": ctl.workers,
            "to": want,
            "reason": reason,
            "applied": True,
        }
        ctl.workers = want
        ctl.last_change = now
        if direction == "down":
            ctl.calm_streak = 0
        self._decisions.append(decision)
        if obs.enabled():
            obs.inc(
                "fleet_autoscale_decisions_total",
                1,
                direction=direction,
                shard=str(sid),
            )
            obs.set_gauge("fleet_shard_workers", float(want), shard=str(sid))
            with obs.span(
                "fleet.autoscale",
                shard=sid,
                direction=direction,
                workers=want,
                reason=reason,
            ):
                pass
        return decision

    # -- background loop ---------------------------------------------------
    def start(self, interval_s: float = 1.0) -> None:
        """Run :meth:`evaluate` on a daemon thread every ``interval_s``."""
        if self._thread is not None:
            return

        def loop() -> None:
            while not self._stop.wait(interval_s):
                try:
                    self.evaluate()
                except Exception:  # pragma: no cover - keep steering
                    pass

        self._stop.clear()
        self._thread = threading.Thread(
            target=loop, name="fleet-autoscaler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    # -- reporting ---------------------------------------------------------
    def decisions(self) -> list[dict]:
        with self._lock:
            return list(self._decisions)

    def state(self) -> dict:
        with self._lock:
            return {
                "evaluations": self.evaluations,
                "policy": {
                    "min_workers": self.policy.min_workers,
                    "max_workers": self.policy.max_workers,
                    "step": self.policy.step,
                    "cooldown_s": self.policy.cooldown_s,
                    "queue_high": self.policy.queue_high,
                    "queue_low": self.policy.queue_low,
                    "scale_down_after": self.policy.scale_down_after,
                },
                "workers": {
                    str(sid): ctl.workers for sid, ctl in self._shards.items()
                },
                "decisions": list(self._decisions)[-16:],
            }
