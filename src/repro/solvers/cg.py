"""Conjugate-gradient solver on top of the permuted-basis operator.

spMVM "is often the dominating component in such solvers" (Sect. I) —
CG is the canonical example: one spMVM plus a handful of BLAS-1
operations per iteration.  The implementation follows the classic
Hestenes-Stiefel recurrence; all iterations run in the stored basis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.formats.base import SparseMatrixFormat
from repro.ops.protocol import CountingOperator, solver_operator
from repro.utils.validation import check_dense_vector

__all__ = ["CGResult", "conjugate_gradient"]


@dataclass(frozen=True)
class CGResult:
    """Outcome of a CG solve."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    #: spMVM invocations (the paper's dominant-cost accounting)
    spmv_count: int


def _jacobi_inverse(op) -> np.ndarray:
    """Inverse-diagonal preconditioner M^{-1} = diag(A)^{-1}."""
    diag = op.diagonal().astype(np.float64)
    if np.any(diag == 0.0):
        raise np.linalg.LinAlgError(
            "Jacobi preconditioner requires a zero-free diagonal"
        )
    return 1.0 / diag


def conjugate_gradient(
    matrix: SparseMatrixFormat,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iter: int | None = None,
    preconditioner: str | np.ndarray | None = None,
    engine: bool = False,
) -> CGResult:
    """Solve ``A x = b`` for symmetric positive-definite ``A``.

    ``tol`` is relative: convergence when ``||r|| <= tol * ||b||``.
    Vectors are permuted into the stored basis once, iterated there,
    and the solution is permuted back — the Sect. II-A workflow.

    ``preconditioner`` may be ``None``, the string ``"jacobi"``
    (M = diag(A)) or an explicit array of M^{-1} diagonal entries in
    the *original* row ordering.  ``engine=True`` runs the iteration
    through the autotuned :mod:`repro.engine` kernels.
    """
    op = CountingOperator(solver_operator(matrix, engine=engine))
    n = op.size
    b = check_dense_vector(b, n, dtype=op.dtype, name="b")
    if max_iter is None:
        max_iter = 10 * n
    if max_iter < 0:
        raise ValueError(f"max_iter must be >= 0, got {max_iter}")
    if tol <= 0:
        raise ValueError(f"tol must be > 0, got {tol}")

    if preconditioner is None:
        minv = None
    elif isinstance(preconditioner, str):
        if preconditioner != "jacobi":
            raise ValueError(
                f"unknown preconditioner {preconditioner!r}; use 'jacobi'"
            )
        minv = op.enter(_jacobi_inverse(op).astype(op.dtype)).astype(np.float64)
    else:
        arr = check_dense_vector(preconditioner, n, name="preconditioner")
        minv = op.enter(arr.astype(op.dtype)).astype(np.float64)

    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return CGResult(np.zeros(n, dtype=op.dtype), 0, 0.0, True, 0)
    threshold = tol * b_norm

    bp = op.enter(b).astype(np.float64)
    if x0 is None:
        x = np.zeros(n, dtype=np.float64)
        r = bp.copy()
    else:
        x = op.enter(check_dense_vector(x0, n, dtype=op.dtype, name="x0")).astype(
            np.float64
        )
        r = bp - op.apply(x.astype(op.dtype)).astype(np.float64)

    z = r * minv if minv is not None else r
    p = z.copy()
    rz = float(r @ z)
    res_norm = float(np.linalg.norm(r))

    iterations = 0
    converged = res_norm <= threshold
    while not converged and iterations < max_iter:
        ap = op.apply(p.astype(op.dtype)).astype(np.float64)
        pap = float(p @ ap)
        if pap <= 0.0:
            raise np.linalg.LinAlgError(
                "matrix is not positive definite (p^T A p <= 0 in CG)"
            )
        alpha = rz / pap
        x = x + alpha * p
        r = r - alpha * ap
        res_norm = float(np.linalg.norm(r))
        iterations += 1
        if obs.enabled():
            obs.set_gauge("solver_residual", res_norm, solver="cg")
            obs.set_gauge(
                "solver_relative_residual", res_norm / b_norm, solver="cg"
            )
            obs.inc("solver_iterations_total", 1, solver="cg")
        if res_norm <= threshold:
            converged = True
            break
        z = r * minv if minv is not None else r
        rz_new = float(r @ z)
        p = z + (rz_new / rz) * p
        rz = rz_new

    if obs.enabled():
        obs.set_gauge("solver_converged", float(converged), solver="cg")
    op.publish("cg")
    return CGResult(
        x=op.leave(x.astype(op.dtype)),
        iterations=iterations,
        residual_norm=res_norm,
        converged=bool(converged),
        spmv_count=op.count,
    )
