"""spMVM-dominated solvers using the permuted-basis workflow (Sect. II-A)."""

from repro.solvers.bicgstab import BiCGSTABResult, bicgstab
from repro.solvers.cg import CGResult, conjugate_gradient
from repro.solvers.kpm import KPMResult, jackson_kernel, kpm_spectral_density
from repro.solvers.lanczos import LanczosResult, lanczos
from repro.solvers.permuted import PermutedOperator, as_operator
from repro.solvers.power import PowerResult, power_iteration

__all__ = [
    "BiCGSTABResult",
    "bicgstab",
    "CGResult",
    "conjugate_gradient",
    "KPMResult",
    "jackson_kernel",
    "kpm_spectral_density",
    "LanczosResult",
    "lanczos",
    "PermutedOperator",
    "as_operator",
    "PowerResult",
    "power_iteration",
]
