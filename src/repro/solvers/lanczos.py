"""Lanczos eigensolver — the HMEp motivation of the paper.

The HMEp matrix "originates from the quantum-mechanical description
... of a one-dimensional solid"; the solvers consuming it are sparse
eigensolvers whose cost is dominated by spMVM.  This module provides a
Lanczos iteration with full reorthogonalisation (robust at the modest
subspace sizes used here) for extremal eigenvalues of symmetric
matrices, running entirely in the permuted basis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.formats.base import SparseMatrixFormat
from repro.ops.protocol import CountingOperator, solver_operator
from repro.utils.validation import check_positive_int

__all__ = ["LanczosResult", "lanczos"]


@dataclass(frozen=True)
class LanczosResult:
    """Extremal Ritz values/vectors of one Lanczos run."""

    eigenvalues: np.ndarray  # ascending Ritz values
    eigenvectors: np.ndarray  # (n, k) Ritz vectors, original basis
    iterations: int
    residual_norms: np.ndarray  # ||A v - lambda v|| per returned pair
    spmv_count: int

    @property
    def ground_state_energy(self) -> float:
        """Smallest Ritz value (physics vocabulary of the HMEp use case)."""
        return float(self.eigenvalues[0])


def lanczos(
    matrix: SparseMatrixFormat,
    *,
    num_eigenvalues: int = 1,
    max_iter: int = 200,
    tol: float = 1e-8,
    seed: int = 0,
    v0: np.ndarray | None = None,
    engine: bool = False,
) -> LanczosResult:
    """Compute the smallest ``num_eigenvalues`` of a symmetric matrix.

    Full reorthogonalisation keeps the basis numerically orthogonal;
    convergence is declared when every requested Ritz pair's residual
    ``|beta * s_last|`` falls below ``tol * |theta|``.
    ``engine=True`` runs the iteration through the autotuned
    :mod:`repro.engine` kernels.
    """
    op = CountingOperator(solver_operator(matrix, engine=engine))
    n = op.size
    k = check_positive_int(num_eigenvalues, "num_eigenvalues")
    max_iter = min(check_positive_int(max_iter, "max_iter"), n)
    if k > max_iter:
        raise ValueError(
            f"num_eigenvalues={k} exceeds the subspace bound max_iter={max_iter}"
        )
    if tol <= 0:
        raise ValueError(f"tol must be > 0, got {tol}")

    rng = np.random.default_rng(seed)
    if v0 is None:
        v = rng.standard_normal(n).astype(op.dtype)
    else:
        v = op.enter(np.asarray(v0))
    v = v / np.linalg.norm(v)

    V = np.zeros((max_iter + 1, n), dtype=np.float64)
    V[0] = v
    alphas: list[float] = []
    betas: list[float] = []
    theta = np.empty(0)
    S = np.empty((0, 0))
    converged_at = max_iter

    for j in range(max_iter):
        w = op.apply(V[j].astype(op.dtype)).astype(np.float64)
        a = float(V[j] @ w)
        alphas.append(a)
        w -= a * V[j]
        if j > 0:
            w -= betas[-1] * V[j - 1]
        # full reorthogonalisation against the existing basis
        w -= V[: j + 1].T @ (V[: j + 1] @ w)
        b = float(np.linalg.norm(w))

        m = j + 1
        T = np.diag(alphas)
        if len(betas):
            off = np.asarray(betas)
            T += np.diag(off, 1) + np.diag(off, -1)
        theta, S = np.linalg.eigh(T)
        if m >= k:
            resid = np.abs(b * S[-1, :k])
            if obs.enabled():
                obs.set_gauge(
                    "solver_residual", float(resid.max()), solver="lanczos"
                )
                obs.inc("solver_iterations_total", 1, solver="lanczos")
            if np.all(resid <= tol * np.maximum(np.abs(theta[:k]), 1e-30)):
                converged_at = m
                break
        elif obs.enabled():
            obs.inc("solver_iterations_total", 1, solver="lanczos")
        if b <= 1e-14:  # invariant subspace found
            converged_at = m
            break
        betas.append(b)
        V[j + 1] = w / b

    m = min(converged_at, len(alphas))
    kk = min(k, m)
    ritz_vals = theta[:kk]
    ritz_vecs_perm = (S[:, :kk].T @ V[:m]).T  # (n, kk)

    residuals = np.empty(kk)
    vecs = np.empty((n, kk), dtype=op.dtype)
    for i in range(kk):
        u = ritz_vecs_perm[:, i]
        u = u / np.linalg.norm(u)
        au = op.apply(u.astype(op.dtype)).astype(np.float64)
        residuals[i] = float(np.linalg.norm(au - ritz_vals[i] * u))
        vecs[:, i] = op.leave(u.astype(op.dtype))

    op.publish("lanczos")
    return LanczosResult(
        eigenvalues=ritz_vals.copy(),
        eigenvectors=vecs,
        iterations=m,
        residual_norms=residuals,
        spmv_count=op.count,
    )
