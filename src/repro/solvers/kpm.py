"""Kernel Polynomial Method: spectral density via Chebyshev moments.

The HMEp matrix's home discipline (quantum lattice models) estimates
spectral properties with the KPM — an algorithm that is *pure* spMVM:
each Chebyshev moment costs one matrix application and two dot
products, so it is an ideal consumer of the pJDS permuted-basis
workflow (and the kind of "production-grade eigensolver" application
the paper's outlook mentions).

Implementation: scale the symmetric matrix to spectrum ⊂ [-1, 1] using
Lanczos-estimated extremal eigenvalues, run the Chebyshev three-term
recurrence on ``R`` random vectors (stochastic trace estimation),
damp the moments with the Jackson kernel, and reconstruct the density
of states on a Chebyshev grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.base import SparseMatrixFormat
from repro.ops.protocol import CountingOperator, solver_operator
from repro.utils.validation import check_positive_int

__all__ = ["KPMResult", "jackson_kernel", "kpm_spectral_density"]


def jackson_kernel(num_moments: int) -> np.ndarray:
    """Jackson damping factors g_m (suppress Gibbs oscillations)."""
    M = check_positive_int(num_moments, "num_moments")
    m = np.arange(M)
    q = np.pi / (M + 1)
    return ((M - m + 1) * np.cos(q * m) + np.sin(q * m) / np.tan(q)) / (M + 1)


@dataclass(frozen=True)
class KPMResult:
    """Spectral density estimate from one KPM run."""

    energies: np.ndarray  # evaluation grid (original spectrum units)
    density: np.ndarray  # estimated density of states (normalised)
    moments: np.ndarray  # Jackson-damped Chebyshev moments
    spectrum_bounds: tuple[float, float]
    spmv_count: int

    def mean_energy(self) -> float:
        """First spectral moment from the density estimate."""
        w = np.trapezoid(self.density, self.energies)
        return float(np.trapezoid(self.density * self.energies, self.energies) / w)


def kpm_spectral_density(
    matrix: SparseMatrixFormat,
    *,
    num_moments: int = 128,
    num_vectors: int = 8,
    num_points: int = 256,
    seed: int = 0,
    bounds: tuple[float, float] | None = None,
    bound_padding: float = 0.05,
    engine: bool = False,
) -> KPMResult:
    """Estimate the density of states of a symmetric matrix.

    Parameters
    ----------
    num_moments : int
        Chebyshev moments M (energy resolution ~ spectral width / M).
    num_vectors : int
        Random vectors R for the stochastic trace (variance ~ 1/(R n)).
    num_points : int
        Evaluation grid size.
    bounds : (float, float), optional
        Known spectral bounds; estimated with Lanczos when omitted.
    bound_padding : float
        Relative safety margin applied to the bounds (KPM diverges if
        an eigenvalue leaves [-1, 1] after scaling; iterative bound
        estimates err low, so the default keeps 5 % headroom).
    engine : bool
        Apply through the autotuned zero-allocation
        :mod:`repro.engine` kernels instead of the plain format ones.

    The Chebyshev recurrence runs **batched**: all ``R`` probe vectors
    advance together as one ``(n, R)`` block per moment through the
    stored-basis SpMM kernel, so every stored matrix entry is read
    once per moment instead of once per (moment, vector) pair — the
    code-balance win block Krylov methods get on real hardware.
    """
    op = CountingOperator(solver_operator(matrix, engine=engine))
    n = op.size
    M = check_positive_int(num_moments, "num_moments")
    R = check_positive_int(num_vectors, "num_vectors")
    P = check_positive_int(num_points, "num_points")

    if bounds is None:
        # extremal Ritz values of a short Lanczos run approach both
        # spectrum ends simultaneously (power iteration fails when the
        # spectrum is nearly symmetric, as for hopping Hamiltonians);
        # the probe applications go through the same CountingOperator,
        # so they land in the spmv accounting automatically
        lo = np.inf
        hi = -np.inf
        for probe_seed in (seed, seed + 1):
            blo, bhi = _lanczos_bounds(op, seed=probe_seed, iters=50)
            lo = min(lo, blo)
            hi = max(hi, bhi)
        bounds = (lo, hi)
    lo, hi = bounds
    if not hi > lo:
        raise ValueError(f"invalid spectral bounds {bounds}")
    half_width = 0.5 * (hi - lo) * (1.0 + bound_padding)
    centre = 0.5 * (hi + lo)

    rng = np.random.default_rng(seed)
    mu = np.zeros(M, dtype=np.float64)

    def apply_scaled_block(V: np.ndarray) -> np.ndarray:
        """Scaled operator on an (n, k) block; one SpMM, k spmv-equivalents."""
        AV = op.apply_block(np.ascontiguousarray(V, dtype=op.dtype))
        return (AV.astype(np.float64) - centre * V) / half_width

    # Rademacher probes, drawn per vector so the stream matches the
    # historical one-vector-at-a-time implementation for a given seed
    signs = np.array([-1.0, 1.0])
    V0 = np.column_stack([rng.choice(signs, size=n) for _ in range(R)])
    T_prev = V0.copy()
    T_curr = apply_scaled_block(V0)
    mu[0] += float(np.einsum("ij,ij->", V0, T_prev))
    if M > 1:
        mu[1] += float(np.einsum("ij,ij->", V0, T_curr))
    for m in range(2, M):
        T_next = 2.0 * apply_scaled_block(T_curr) - T_prev
        mu[m] += float(np.einsum("ij,ij->", V0, T_next))
        T_prev, T_curr = T_curr, T_next
    mu /= R * n

    damped = mu * jackson_kernel(M)

    # reconstruct on a Chebyshev grid x_k = cos(theta_k)
    k = np.arange(P)
    x = np.cos(np.pi * (k + 0.5) / P)
    theta = np.arccos(x)
    series = damped[0] + 2.0 * np.sum(
        damped[1:, None] * np.cos(np.outer(np.arange(1, M), theta)), axis=0
    )
    density_x = series / (np.pi * np.sqrt(1.0 - x**2))
    energies = centre + half_width * x
    order = np.argsort(energies)
    energies = energies[order]
    density = density_x[order] / half_width  # change of variables

    op.publish("kpm")
    return KPMResult(
        energies=energies,
        density=density,
        moments=damped,
        spectrum_bounds=(lo, hi),
        spmv_count=op.count,
    )


def _lanczos_bounds(op, *, seed: int, iters: int) -> tuple[float, float]:
    """(min Ritz, max Ritz) of a short plain Lanczos run.

    No reorthogonalisation — extremal Ritz values are robust to the
    resulting ghost eigenvalues, which only duplicate converged ends.
    """
    rng = np.random.default_rng(seed)
    n = op.size
    v = rng.standard_normal(n)
    v /= np.linalg.norm(v)
    v_prev = np.zeros(n)
    beta = 0.0
    alphas: list[float] = []
    betas: list[float] = []
    for _ in range(min(iters, n)):
        w = op.apply(v.astype(op.dtype)).astype(np.float64)
        a = float(v @ w)
        alphas.append(a)
        w = w - a * v - beta * v_prev
        beta = float(np.linalg.norm(w))
        if beta < 1e-12:
            break
        betas.append(beta)
        v_prev = v
        v = w / beta
    if len(betas) == len(alphas):
        betas = betas[:-1]
    T = np.diag(alphas)
    if betas:
        off = np.asarray(betas)
        T += np.diag(off, 1) + np.diag(off, -1)
    theta = np.linalg.eigvalsh(T)
    return float(theta[0]), float(theta[-1])
