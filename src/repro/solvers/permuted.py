"""Permuted-basis solver workflow (Sect. II-A).

The pJDS drawback is that spMVM happens in a permuted basis.  The
paper's answer: for Krylov-type iterative methods, permute once before
the iteration, run every iteration on permuted vectors, and permute
back once at the end.  :class:`PermutedOperator` packages exactly that
contract so the solvers below never gather/scatter inside their loops.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.jds import JaggedDiagonalsBase
from repro.core.sorting import Permutation
from repro.formats.base import SparseMatrixFormat

__all__ = ["PermutedOperator", "as_operator"]


class PermutedOperator:
    """Square linear operator working in a format's stored basis.

    For jagged formats the ``apply`` closure is the zero-copy
    ``spmv_permuted`` kernel; for permutation-free formats it is plain
    ``spmv`` and the basis maps are identities.
    """

    def __init__(
        self,
        apply_: Callable[[np.ndarray], np.ndarray],
        permutation: Permutation,
        dtype: np.dtype,
    ):
        self._apply = apply_
        self._perm = permutation
        self._dtype = np.dtype(dtype)

    @property
    def size(self) -> int:
        return self._perm.size

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def permutation(self) -> Permutation:
        return self._perm

    def apply(self, x_perm: np.ndarray) -> np.ndarray:
        """One operator application in the stored basis."""
        return self._apply(x_perm)

    __call__ = apply

    def enter(self, x: np.ndarray) -> np.ndarray:
        """Map a vector from the original into the stored basis."""
        return np.ascontiguousarray(self._perm.to_permuted(x), dtype=self._dtype)

    def leave(self, x_perm: np.ndarray) -> np.ndarray:
        """Map a stored-basis vector back to the original ordering."""
        return self._perm.to_original(x_perm)


def as_operator(matrix: SparseMatrixFormat) -> PermutedOperator:
    """Wrap any square format as a :class:`PermutedOperator`."""
    if matrix.nrows != matrix.ncols:
        raise ValueError("solvers require a square matrix")
    if isinstance(matrix, JaggedDiagonalsBase):
        return PermutedOperator(
            matrix.spmv_permuted, matrix.permutation, matrix.dtype
        )
    return PermutedOperator(
        lambda x: matrix.spmv(x),
        Permutation.identity(matrix.nrows),
        matrix.dtype,
    )
