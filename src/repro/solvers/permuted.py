"""Permuted-basis solver workflow (Sect. II-A) — protocol re-exports.

The pJDS drawback is that spMVM happens in a permuted basis.  The
paper's answer: for Krylov-type iterative methods, permute once before
the iteration, run every iteration on permuted vectors, and permute
back once at the end.  :class:`~repro.ops.protocol.PermutedOperator`
packages exactly that contract; since the ISSUE-4 refactor it lives in
:mod:`repro.ops` (together with the rest of the operator protocol) and
this module re-exports it for the historical import path.

``as_operator`` remains the solver-facing spelling of
:func:`repro.ops.solver_operator`: wrap any square format, engine
``BoundMatrix`` or :class:`~repro.ops.protocol.LinearOperator` for the
stored-basis iteration.  The old per-consumer isinstance dispatch is
gone — everything resolves through the shared adapters.
"""

from __future__ import annotations

from repro.ops.protocol import PermutedOperator, solver_operator

__all__ = ["PermutedOperator", "as_operator"]


def as_operator(matrix, *, engine: bool = False, tune: bool = True) -> PermutedOperator:
    """Wrap any square operator source for the permuted-basis workflow.

    Canonical alias of :func:`repro.ops.solver_operator` (kept as the
    historical solver-facing name).  ``engine=True`` binds the matrix
    through :func:`repro.engine.bind` first (autotuned variant +
    persistent workspace); passing an already-bound matrix — or any
    :class:`~repro.ops.protocol.LinearOperator` — uses it as-is.
    """
    return solver_operator(matrix, engine=engine, tune=tune)
