"""Permuted-basis solver workflow (Sect. II-A).

The pJDS drawback is that spMVM happens in a permuted basis.  The
paper's answer: for Krylov-type iterative methods, permute once before
the iteration, run every iteration on permuted vectors, and permute
back once at the end.  :class:`PermutedOperator` packages exactly that
contract so the solvers below never gather/scatter inside their loops.

With ``engine=True`` the operator applies through a
:class:`repro.engine.BoundMatrix` — the autotuned kernel variant plus
a persistent workspace, so the solver inner loop is allocation-free on
the matrix side — and block (multi-vector) applications route to the
batched :mod:`repro.engine.spmm` kernels instead of a per-column loop.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.jds import JaggedDiagonalsBase
from repro.core.sorting import Permutation
from repro.formats.base import SparseMatrixFormat

__all__ = ["PermutedOperator", "as_operator"]


class PermutedOperator:
    """Square linear operator working in a format's stored basis.

    For jagged formats the ``apply`` closure is the zero-copy
    ``spmv_permuted`` kernel; for permutation-free formats it is plain
    ``spmv`` and the basis maps are identities.  ``apply_block`` is
    the multi-vector analogue (stored-basis SpMM); when no batched
    closure is supplied it degrades to a per-column loop.
    """

    def __init__(
        self,
        apply_: Callable[[np.ndarray], np.ndarray],
        permutation: Permutation,
        dtype: np.dtype,
        apply_block: Callable[[np.ndarray], np.ndarray] | None = None,
    ):
        self._apply = apply_
        self._apply_block = apply_block
        self._perm = permutation
        self._dtype = np.dtype(dtype)

    @property
    def size(self) -> int:
        return self._perm.size

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def permutation(self) -> Permutation:
        return self._perm

    def apply(self, x_perm: np.ndarray) -> np.ndarray:
        """One operator application in the stored basis."""
        return self._apply(x_perm)

    __call__ = apply

    def apply_block(self, X_perm: np.ndarray) -> np.ndarray:
        """Batched stored-basis application, ``Y~ = (P A P^T) X~``.

        Always returns a freshly owned ``(n, k)`` array (safe to keep
        across subsequent applications).
        """
        if self._apply_block is not None:
            return np.array(self._apply_block(X_perm), copy=True)
        out = np.empty_like(X_perm)
        for j in range(X_perm.shape[1]):
            out[:, j] = self._apply(np.ascontiguousarray(X_perm[:, j]))
        return out

    def enter(self, x: np.ndarray) -> np.ndarray:
        """Map a vector from the original into the stored basis."""
        return np.ascontiguousarray(self._perm.to_permuted(x), dtype=self._dtype)

    def leave(self, x_perm: np.ndarray) -> np.ndarray:
        """Map a stored-basis vector back to the original ordering."""
        return self._perm.to_original(x_perm)


def _from_bound(bound) -> PermutedOperator:
    """Operator over an engine-bound matrix (tuned kernel + workspace)."""
    from repro.engine.spmm import spmm_permuted

    m = bound.matrix
    if bound.variant.supports_permuted and isinstance(m, JaggedDiagonalsBase):
        return PermutedOperator(
            bound.spmv_permuted,
            m.permutation,
            m.dtype,
            apply_block=lambda X: spmm_permuted(m, X, ws=bound.workspace),
        )
    return PermutedOperator(
        lambda x: bound.spmv(x),
        Permutation.identity(m.nrows),
        m.dtype,
        apply_block=lambda X: bound.spmm(X),
    )


def as_operator(
    matrix: SparseMatrixFormat,
    *,
    engine: bool = False,
    tune: bool = True,
) -> PermutedOperator:
    """Wrap any square format (or a ``BoundMatrix``) as an operator.

    ``engine=True`` binds the matrix through :func:`repro.engine.bind`
    first (autotuned variant + persistent workspace); passing an
    already-bound matrix uses it as-is.
    """
    from repro.engine.bound import BoundMatrix

    if isinstance(matrix, BoundMatrix):
        if matrix.nrows != matrix.ncols:
            raise ValueError("solvers require a square matrix")
        return _from_bound(matrix)
    if matrix.nrows != matrix.ncols:
        raise ValueError("solvers require a square matrix")
    if engine:
        from repro.engine.bound import bind

        return _from_bound(bind(matrix, tune=tune))
    if isinstance(matrix, JaggedDiagonalsBase):
        from repro.engine.spmm import spmm_permuted

        return PermutedOperator(
            matrix.spmv_permuted,
            matrix.permutation,
            matrix.dtype,
            apply_block=lambda X: spmm_permuted(matrix, X),
        )
    return PermutedOperator(
        lambda x: matrix.spmv(x),
        Permutation.identity(matrix.nrows),
        matrix.dtype,
        apply_block=lambda X: matrix.spmm(X),
    )
