"""BiCGSTAB for nonsymmetric systems (the DLR matrices of Sect. I-C).

DLR1/DLR2 are explicitly nonsymmetric ("the resulting matrix is
nonsymmetric"), so the production solvers behind them are
nonsymmetric Krylov methods.  Van der Vorst's BiCGSTAB costs two
spMVMs per iteration — still spMVM-dominated, still running entirely
in the permuted basis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.formats.base import SparseMatrixFormat
from repro.ops.protocol import CountingOperator, solver_operator
from repro.utils.validation import check_dense_vector

__all__ = ["BiCGSTABResult", "bicgstab"]

_BREAKDOWN_EPS = 1e-30


def _publish_iteration(res_norm: float, b_norm: float) -> None:
    """Per-iteration convergence gauges (no-op while obs is disabled)."""
    if obs.enabled():
        obs.set_gauge("solver_residual", res_norm, solver="bicgstab")
        obs.set_gauge(
            "solver_relative_residual", res_norm / b_norm, solver="bicgstab"
        )
        obs.inc("solver_iterations_total", 1, solver="bicgstab")


@dataclass(frozen=True)
class BiCGSTABResult:
    """Outcome of a BiCGSTAB solve."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    spmv_count: int


def bicgstab(
    matrix: SparseMatrixFormat,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iter: int | None = None,
    engine: bool = False,
) -> BiCGSTABResult:
    """Solve the (possibly nonsymmetric) system ``A x = b``.

    Relative convergence criterion ``||r|| <= tol * ||b||``; raises
    ``numpy.linalg.LinAlgError`` on the method's classical breakdowns
    (``rho`` or ``omega`` collapsing to zero).  ``engine=True`` runs
    the iteration through the autotuned :mod:`repro.engine` kernels.
    """
    op = CountingOperator(solver_operator(matrix, engine=engine))
    n = op.size
    b = check_dense_vector(b, n, dtype=op.dtype, name="b")
    if tol <= 0:
        raise ValueError(f"tol must be > 0, got {tol}")
    if max_iter is None:
        max_iter = 10 * n
    if max_iter < 0:
        raise ValueError(f"max_iter must be >= 0, got {max_iter}")

    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return BiCGSTABResult(np.zeros(n, dtype=op.dtype), 0, 0.0, True, 0)
    threshold = tol * b_norm

    bp = op.enter(b).astype(np.float64)
    if x0 is None:
        x = np.zeros(n, dtype=np.float64)
        r = bp.copy()
    else:
        x = op.enter(check_dense_vector(x0, n, dtype=op.dtype, name="x0")).astype(
            np.float64
        )
        r = bp - op.apply(x.astype(op.dtype)).astype(np.float64)
    r_hat = r.copy()
    rho = alpha = omega = 1.0
    v = np.zeros(n)
    p = np.zeros(n)

    iterations = 0
    res_norm = float(np.linalg.norm(r))
    converged = res_norm <= threshold
    while not converged and iterations < max_iter:
        rho_new = float(r_hat @ r)
        if abs(rho_new) < _BREAKDOWN_EPS:
            raise np.linalg.LinAlgError("BiCGSTAB breakdown: rho ~ 0")
        beta = (rho_new / rho) * (alpha / omega) if iterations else 1.0
        if iterations:
            p = r + beta * (p - omega * v)
        else:
            p = r.copy()
        rho = rho_new

        v = op.apply(p.astype(op.dtype)).astype(np.float64)
        denom = float(r_hat @ v)
        if abs(denom) < _BREAKDOWN_EPS:
            raise np.linalg.LinAlgError("BiCGSTAB breakdown: r_hat . v ~ 0")
        alpha = rho / denom
        s = r - alpha * v

        if np.linalg.norm(s) <= threshold:  # early half-step convergence
            x = x + alpha * p
            res_norm = float(np.linalg.norm(s))
            iterations += 1
            _publish_iteration(res_norm, b_norm)
            converged = True
            break

        t = op.apply(s.astype(op.dtype)).astype(np.float64)
        tt = float(t @ t)
        if tt < _BREAKDOWN_EPS:
            raise np.linalg.LinAlgError("BiCGSTAB breakdown: ||t|| ~ 0")
        omega = float(t @ s) / tt
        if abs(omega) < _BREAKDOWN_EPS:
            raise np.linalg.LinAlgError("BiCGSTAB breakdown: omega ~ 0")

        x = x + alpha * p + omega * s
        r = s - omega * t
        res_norm = float(np.linalg.norm(r))
        iterations += 1
        _publish_iteration(res_norm, b_norm)
        converged = res_norm <= threshold

    if obs.enabled():
        obs.set_gauge("solver_converged", float(converged), solver="bicgstab")
    op.publish("bicgstab")
    return BiCGSTABResult(
        x=op.leave(x.astype(op.dtype)),
        iterations=iterations,
        residual_norm=res_norm,
        converged=bool(converged),
        spmv_count=op.count,
    )
