"""Power iteration: the simplest spMVM-dominated solver.

Useful both as an application example and as a stress test that runs
thousands of back-to-back spMVMs through the permuted-basis operator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.formats.base import SparseMatrixFormat
from repro.ops.protocol import CountingOperator, solver_operator
from repro.utils.validation import check_positive_int

__all__ = ["PowerResult", "power_iteration"]


@dataclass(frozen=True)
class PowerResult:
    """Dominant eigenpair estimate."""

    eigenvalue: float
    eigenvector: np.ndarray  # original basis, unit norm
    iterations: int
    converged: bool
    spmv_count: int


def power_iteration(
    matrix: SparseMatrixFormat,
    *,
    tol: float = 1e-10,
    max_iter: int = 5000,
    seed: int = 0,
    v0: np.ndarray | None = None,
    engine: bool = False,
) -> PowerResult:
    """Estimate the dominant eigenvalue (largest |lambda|).

    Convergence: relative Rayleigh-quotient change below ``tol``.
    ``engine=True`` runs the iteration through the autotuned
    :mod:`repro.engine` kernels.
    """
    op = CountingOperator(solver_operator(matrix, engine=engine))
    n = op.size
    max_iter = check_positive_int(max_iter, "max_iter")
    if tol <= 0:
        raise ValueError(f"tol must be > 0, got {tol}")

    rng = np.random.default_rng(seed)
    v = (
        op.enter(np.asarray(v0))
        if v0 is not None
        else rng.standard_normal(n).astype(op.dtype)
    )
    norm = float(np.linalg.norm(v))
    if norm == 0.0:
        raise ValueError("start vector must be non-zero")
    v = v / norm

    lam = 0.0
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        w = op.apply(v)
        lam_new = float(v @ w)
        norm = float(np.linalg.norm(w))
        if norm == 0.0:
            lam = 0.0
            converged = True
            v = w
            break
        v = w / norm
        if obs.enabled():
            # convergence gauge: relative Rayleigh-quotient change
            obs.set_gauge(
                "solver_residual",
                abs(lam_new - lam) / max(abs(lam_new), 1e-30),
                solver="power",
            )
            obs.inc("solver_iterations_total", 1, solver="power")
        if abs(lam_new - lam) <= tol * max(abs(lam_new), 1e-30):
            lam = lam_new
            converged = True
            break
        lam = lam_new

    if obs.enabled():
        obs.set_gauge("solver_converged", float(converged), solver="power")
    op.publish("power")
    return PowerResult(
        eigenvalue=lam,
        eigenvector=op.leave(v),
        iterations=it,
        converged=converged,
        spmv_count=op.count,
    )
