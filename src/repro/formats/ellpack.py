"""ELLPACK storage format (Grimes/Kincaid/Young; Bell & Garland on GPUs).

All rows are padded with explicit zeros to the *global* maximum row
length ``Nmax_nzr`` and the resulting rectangular ``N x Nmax`` array is
stored column by column, so that consecutive GPU threads (rows) touch
consecutive memory addresses — the coalescing requirement of Sect. II-A.

Following the paper's footnote, the number of rows is padded to a
multiple of the warp size (``row_pad``, default 32).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.formats.base import INDEX_DTYPE, SparseMatrixFormat, index_nbytes
from repro.formats.coo import COOMatrix
from repro.utils.validation import check_positive_int

__all__ = ["ELLPACKMatrix", "build_ell_arrays"]


def build_ell_arrays(
    coo: COOMatrix, padded_rows: int, width: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Construct column-major ELLPACK arrays from a canonical COO matrix.

    Returns
    -------
    val : ndarray, shape (width, padded_rows)
        ``val[j, i]`` is the j-th stored entry of row i (0.0 padding).
    col : ndarray, shape (width, padded_rows)
        Matching column indices (padding points at column 0, which is
        always safe because the padding value is exactly 0.0).
    row_lengths : ndarray, shape (padded_rows,)
        True non-zero count per row (0 for padding rows).
    """
    lengths = np.bincount(coo.rows, minlength=padded_rows).astype(INDEX_DTYPE)
    val = np.zeros((width, padded_rows), dtype=coo.dtype)
    col = np.zeros((width, padded_rows), dtype=INDEX_DTYPE)
    if coo.nnz:
        # position of each entry within its row: COO canonical order is
        # row-major, so entries of one row are consecutive.
        starts = np.zeros(padded_rows + 1, dtype=INDEX_DTYPE)
        np.cumsum(lengths, out=starts[1:])
        slot = np.arange(coo.nnz, dtype=INDEX_DTYPE) - starts[coo.rows]
        val[slot, coo.rows] = coo.values
        col[slot, coo.rows] = coo.cols
    return val, col, lengths


class ELLPACKMatrix(SparseMatrixFormat):
    """Plain ELLPACK: the kernel computes the padding too (Fig. 2a)."""

    name = "ELLPACK"

    def __init__(
        self,
        val: np.ndarray,
        col: np.ndarray,
        row_lengths: np.ndarray,
        shape: tuple[int, int],
    ):
        if val.shape != col.shape:
            raise ValueError(
                f"val/col shape mismatch: {val.shape} vs {col.shape}"
            )
        if val.ndim != 2:
            raise ValueError(f"val must be 2-D (width, padded_rows), got {val.ndim}-D")
        if row_lengths.shape != (val.shape[1],):
            raise ValueError(
                "row_lengths must match the padded row count "
                f"{val.shape[1]}, got {row_lengths.shape}"
            )
        nnz = int(row_lengths.sum())
        super().__init__(shape, nnz=nnz, dtype=val.dtype)
        if shape[0] > val.shape[1]:
            raise ValueError("padded row count smaller than nrows")
        self._val = np.ascontiguousarray(val)
        self._col = np.ascontiguousarray(col)
        self._row_lengths = np.ascontiguousarray(row_lengths, dtype=INDEX_DTYPE)

    # ------------------------------------------------------------------
    @property
    def val(self) -> np.ndarray:
        v = self._val.view()
        v.flags.writeable = False
        return v

    @property
    def col(self) -> np.ndarray:
        v = self._col.view()
        v.flags.writeable = False
        return v

    @property
    def padded_rows(self) -> int:
        """Row count padded to the warp-size multiple."""
        return self._val.shape[1]

    @property
    def width(self) -> int:
        """Stored width = global maximum row length ``Nmax_nzr``."""
        return self._val.shape[0]

    # ------------------------------------------------------------------
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x = self.check_rhs(x)
        y = self.alloc_result(out, x)
        if self.width == 0:
            return y
        # native-dtype column sweep: x was coerced to the matrix dtype by
        # check_rhs, so no per-column astype copies happen.
        acc = np.zeros(self.padded_rows, dtype=self._dtype)
        for j in range(self.width):
            # one jagged column: contiguous val/col rows, gathered RHS
            acc += self._val[j] * x[self._col[j]]
        y[:] = acc[: self.nrows]
        return y

    def _row_major_entries(self):
        """The padded rectangle in row-major order (cached).

        Returns ``(col_rm, val_rm)`` where ``col_rm`` is the flat
        column-index array with row ``r``'s slots at
        ``[r * width, (r + 1) * width)`` and ``val_rm`` the matching
        ``(padded_rows, width)`` value rectangle.  Padding slots hold
        value 0 / column 0.  The engine's blocked SpMM kernel reduces
        this view with per-row-chunk batched GEMVs.
        """
        cached = getattr(self, "_row_major_cache", None)
        if cached is None:
            val_rm = np.ascontiguousarray(self._val.T)
            col_rm = np.ascontiguousarray(self._col.T).ravel()
            cached = (col_rm, val_rm)
            self._row_major_cache = cached
        return cached

    def to_coo(self) -> COOMatrix:
        rows_ = []
        cols_ = []
        vals_ = []
        for j in range(self.width):
            active = self._row_lengths > j
            active[self.nrows :] = False
            idx = np.nonzero(active)[0]
            rows_.append(idx)
            cols_.append(self._col[j, idx])
            vals_.append(self._val[j, idx])
        if rows_:
            rows = np.concatenate(rows_)
            cols = np.concatenate(cols_)
            vals = np.concatenate(vals_)
        else:  # pragma: no cover - zero-width matrix
            rows = np.empty(0, dtype=INDEX_DTYPE)
            cols = np.empty(0, dtype=INDEX_DTYPE)
            vals = np.empty(0, dtype=self._dtype)
        return COOMatrix(rows, cols, vals, self.shape, sum_duplicates=False)

    @classmethod
    def from_coo(cls, coo: COOMatrix, *, row_pad: int = 32, **kwargs) -> "ELLPACKMatrix":
        if kwargs:
            raise TypeError(f"unexpected kwargs for ELLPACK: {sorted(kwargs)}")
        row_pad = check_positive_int(row_pad, "row_pad")
        padded = -(-coo.nrows // row_pad) * row_pad
        lengths = np.bincount(coo.rows, minlength=coo.nrows)
        width = int(lengths.max()) if coo.nnz else 0
        val, col, row_lengths = build_ell_arrays(coo, padded, width)
        return cls(val, col, row_lengths, coo.shape)

    def memory_breakdown(self) -> Mapping[str, int]:
        slots = self.padded_rows * self.width
        return {
            "val": slots * self.value_itemsize,
            "col_idx": index_nbytes(slots),
        }

    def row_lengths(self) -> np.ndarray:
        return self._row_lengths[: self.nrows].copy()
