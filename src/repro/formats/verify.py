"""Structural invariant checker for format instances.

``verify_format`` inspects any :class:`SparseMatrixFormat` instance and
raises :class:`FormatInvariantError` on the first violated invariant —
useful both in this package's tests and for downstream users writing
their own formats against the ABC.

Checked invariants (per applicable format):

* shape/nnz bookkeeping is consistent with the COO round trip;
* ``memory_breakdown`` values are non-negative and ``val`` accounts for
  at least ``nnz`` elements;
* ``row_lengths`` sums to ``nnz`` and matches the round-tripped COO;
* jagged formats: ``col_start`` monotone, padded lengths non-increasing
  and dominating the true lengths, permutation valid;
* SELL: chunk pointers consistent with chunk widths;
* CMRS: strip pointers monotone and covering the nnz, in-strip row
  counters below the strip height, entries row-major within strips;
* ARG-CSR: power-of-two group widths strictly increasing, rectangle
  slot accounting exact, stored rows a valid partial permutation,
  true lengths dominated by the group width;
* spMVM agreement with the COO oracle on a random vector.
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import SparseMatrixFormat

__all__ = ["FormatInvariantError", "verify_format"]


class FormatInvariantError(AssertionError):
    """A format instance violates one of its structural invariants."""


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise FormatInvariantError(message)


def verify_format(
    matrix: SparseMatrixFormat, *, check_spmv: bool = True, seed: int = 0
) -> None:
    """Validate every applicable invariant of ``matrix``.

    Raises :class:`FormatInvariantError` on the first violation; returns
    None when everything holds.  ``check_spmv=False`` skips the (O(nnz))
    oracle comparison for very large instances.
    """
    # imported here: repro.core modules themselves import repro.formats
    from repro.core.jds import JaggedDiagonalsBase
    from repro.core.sell import SELLMatrix

    _require(matrix.nrows >= 1 and matrix.ncols >= 1, "empty shape")
    _require(matrix.nnz >= 0, "negative nnz")

    breakdown = matrix.memory_breakdown()
    _require(len(breakdown) > 0, "memory_breakdown is empty")
    for name, nbytes in breakdown.items():
        _require(nbytes >= 0, f"negative byte count for {name!r}")
    _require("val" in breakdown, "memory_breakdown must account 'val'")
    _require(
        breakdown["val"] >= matrix.nnz * matrix.value_itemsize,
        "val storage smaller than the non-zeros",
    )
    _require(matrix.nbytes == sum(breakdown.values()), "nbytes != breakdown sum")

    lengths = matrix.row_lengths()
    _require(lengths.shape == (matrix.nrows,), "row_lengths shape mismatch")
    _require(int(lengths.sum()) == matrix.nnz, "row_lengths do not sum to nnz")
    _require(bool(np.all(lengths >= 0)), "negative row length")

    if isinstance(matrix, JaggedDiagonalsBase):
        cs = matrix.col_start
        _require(cs[0] == 0, "col_start[0] != 0")
        _require(bool(np.all(np.diff(cs) >= 0)), "col_start not monotone")
        _require(int(cs[-1]) == matrix.total_slots, "col_start[-1] != slots")
        _require(
            bool(np.all(matrix.padded_lengths >= matrix.rowmax)),
            "padded lengths below true lengths",
        )
        if matrix.nrows > 1:
            _require(
                bool(np.all(np.diff(matrix.padded_lengths) <= 0)),
                "padded lengths not non-increasing",
            )
        perm = matrix.permutation
        _require(perm.size == matrix.nrows, "permutation size mismatch")
        _require(
            bool(np.array_equal(np.sort(perm.perm), np.arange(matrix.nrows))),
            "permutation is not a bijection",
        )

    if isinstance(matrix, SELLMatrix):
        ptr = matrix.chunk_ptr
        widths = matrix.chunk_widths
        _require(ptr[0] == 0, "chunk_ptr[0] != 0")
        _require(
            bool(
                np.array_equal(
                    np.diff(ptr), widths * matrix.chunk_rows
                )
            ),
            "chunk_ptr inconsistent with chunk widths",
        )

    from repro.formats.argcsr import ARGCSRMatrix
    from repro.formats.cmrs import CMRSMatrix

    if isinstance(matrix, CMRSMatrix):
        sptr = matrix.strip_ptr
        _require(sptr[0] == 0, "strip_ptr[0] != 0")
        _require(bool(np.all(np.diff(sptr) >= 0)), "strip_ptr not monotone")
        _require(int(sptr[-1]) == matrix.nnz, "strip_ptr[-1] != nnz")
        _require(
            bool(np.all(matrix.row_in_strip < matrix.strip_height)),
            "row_in_strip counter >= strip height",
        )
        if matrix.nnz:
            # entries must be row-major within each strip (the run
            # detection the strip kernels rely on): the per-entry row
            # id may never decrease between two entries of one strip
            strips = np.repeat(
                np.arange(matrix.nstrips, dtype=np.int64), np.diff(sptr)
            )
            rows = matrix.entry_rows
            same = strips[1:] == strips[:-1]
            _require(
                bool(np.all(rows[1:][same] >= rows[:-1][same])),
                "strip entries not row-major",
            )

    if isinstance(matrix, ARGCSRMatrix):
        gp, gw = matrix.group_ptr, matrix.group_width
        rp = matrix.group_rows_ptr
        _require(gp[0] == 0 and rp[0] == 0, "group pointers must start at 0")
        _require(
            bool(np.all(gw > 0)) and bool(np.all((gw & (gw - 1)) == 0)),
            "group widths must be positive powers of two",
        )
        _require(
            bool(np.all(np.diff(gw) > 0)), "group widths not strictly increasing"
        )
        _require(
            bool(np.array_equal(np.diff(gp), np.diff(rp) * gw)),
            "group slot accounting inconsistent",
        )
        _require(int(gp[-1]) == matrix.total_slots, "group_ptr[-1] != slots")
        rids = matrix.row_ids
        _require(
            np.unique(rids).size == rids.size, "duplicate stored row ids"
        )
        group_of = np.repeat(
            np.arange(matrix.ngroups, dtype=np.int64), np.diff(rp)
        )
        _require(
            bool(np.all(matrix.true_lengths <= gw[group_of])),
            "true row length exceeds its group width",
        )

    # the (O(nnz)) round trip runs after the cheap structural checks so
    # corrupted layout metadata fails with a clear message, not an
    # IndexError from inside to_coo
    coo = matrix.to_coo()
    _require(coo.shape == matrix.shape, "to_coo changes the shape")
    _require(coo.nnz == matrix.nnz, "to_coo changes nnz")
    _require(
        np.array_equal(coo.row_lengths(), lengths),
        "row_lengths disagree with the COO round trip",
    )

    if check_spmv and matrix.nnz:
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(matrix.ncols).astype(matrix.dtype)
        got = matrix.spmv(x)
        want = coo.spmv(x)
        _require(
            bool(np.allclose(got, want, atol=1e-5 if matrix.dtype == np.float32 else 1e-9)),
            "spmv disagrees with the COO oracle",
        )
