"""Abstract base class for sparse matrix storage formats.

Every format in :mod:`repro.formats` and :mod:`repro.core` derives from
:class:`SparseMatrixFormat`.  The contract is deliberately small:

* construction from / conversion to COO (the interchange format),
* a vectorised ``spmv`` (sparse matrix-vector multiply, ``y = A @ x``),
* byte-exact storage accounting (``memory_breakdown``), which Table I of
  the paper is built on,
* row-length introspection, which both the pJDS construction and the
  Fig. 3 histograms are built on.

Formats are immutable after construction; all arrays are private and the
kernels receive them through read-only views.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.utils.validation import check_dense_vector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.formats.coo import COOMatrix

__all__ = ["SparseMatrixFormat", "INDEX_DTYPE", "index_nbytes"]

#: Package-wide index dtype.  The paper stores indices as 4-byte integers
#: (``col_start`` is "Nmax x 4 byte"); we *compute* with int64 for safety
#: but *account* storage at 4 bytes per index to match the paper's byte
#: counts.  ``index_nbytes`` centralises that accounting rule.
INDEX_DTYPE = np.int64

#: Storage bytes per index entry used in all memory accounting (the
#: device-side representation the paper assumes).
INDEX_STORAGE_BYTES = 4


def index_nbytes(count: int) -> int:
    """Device-storage bytes for ``count`` index entries (4 bytes each)."""
    return int(count) * INDEX_STORAGE_BYTES


class SparseMatrixFormat(abc.ABC):
    """Common interface of all sparse storage formats.

    Subclasses must set :attr:`name` and implement the abstract methods.
    """

    #: Short human-readable format name (e.g. ``"pJDS"``); class attribute.
    name: str = "abstract"

    def __init__(self, shape: tuple[int, int], nnz: int, dtype: np.dtype):
        self._shape = (int(shape[0]), int(shape[1]))
        self._nnz = int(nnz)
        self._dtype = np.dtype(dtype)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """Matrix shape ``(nrows, ncols)``."""
        return self._shape

    @property
    def nrows(self) -> int:
        return self._shape[0]

    @property
    def ncols(self) -> int:
        return self._shape[1]

    @property
    def nnz(self) -> int:
        """Number of stored *non-zero* entries (excludes format padding)."""
        return self._nnz

    @property
    def dtype(self) -> np.dtype:
        """Value dtype (float32 = paper's SP, float64 = DP)."""
        return self._dtype

    @property
    def value_itemsize(self) -> int:
        """Bytes per stored value (4 for SP, 8 for DP)."""
        return self._dtype.itemsize

    @property
    def avg_row_length(self) -> float:
        """The paper's ``Nnzr``: average number of non-zeros per row."""
        return self._nnz / self._shape[0]

    # ------------------------------------------------------------------
    # abstract interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Compute ``y = A @ x`` with the format's vectorised kernel.

        Parameters
        ----------
        x : ndarray
            Dense RHS vector of length ``ncols``.
        out : ndarray, optional
            Preallocated result vector of length ``nrows``; overwritten.

        Returns
        -------
        ndarray
            The result ``y`` in the matrix's *original* row ordering
            (permuting formats undo their permutation internally).
        """

    @abc.abstractmethod
    def to_coo(self) -> "COOMatrix":
        """Convert to the COO interchange format (canonical ordering)."""

    @classmethod
    @abc.abstractmethod
    def from_coo(cls, coo: "COOMatrix", **kwargs) -> "SparseMatrixFormat":
        """Build this format from a COO matrix."""

    @abc.abstractmethod
    def memory_breakdown(self) -> Mapping[str, int]:
        """Per-array device storage bytes, e.g. ``{"val": ..., "col_idx": ...}``.

        Values are accounted at :attr:`value_itemsize` bytes per (possibly
        padded) stored element and indices at 4 bytes per entry, matching
        the paper's footprint discussion.
        """

    @abc.abstractmethod
    def row_lengths(self) -> np.ndarray:
        """Number of non-zeros of each row, in original row order."""

    # ------------------------------------------------------------------
    # derived helpers
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Total device storage bytes (sum of :meth:`memory_breakdown`)."""
        return int(sum(self.memory_breakdown().values()))

    @property
    def stored_elements(self) -> int:
        """Number of value slots held in device memory, *including* padding."""
        return self.memory_breakdown()["val"] // self.value_itemsize

    @property
    def padding_overhead(self) -> float:
        """Fraction of stored value slots that are padding (zero fill)."""
        stored = self.stored_elements
        if stored == 0:
            return 0.0
        return 1.0 - self._nnz / stored

    def max_row_length(self) -> int:
        """The paper's ``Nmax_nzr``."""
        lengths = self.row_lengths()
        return int(lengths.max()) if lengths.size else 0

    def check_rhs(self, x: np.ndarray) -> np.ndarray:
        """Validate an RHS vector and coerce it to the value dtype."""
        return check_dense_vector(x, self.ncols, dtype=self._dtype, name="x")

    def alloc_result(
        self,
        out: np.ndarray | None,
        x: np.ndarray | None = None,
        *,
        zero: bool = True,
    ) -> np.ndarray:
        """Return a zeroed result vector, reusing ``out`` when provided.

        When ``x`` (the already-coerced RHS) is passed, an explicit
        aliasing check rejects ``spmv(x, out=x)``-style calls: every
        kernel zeroes/overwrites ``out`` before it has finished reading
        ``x``, so an aliased output would silently corrupt the result.
        Callers that want in-place semantics must go through a distinct
        buffer (e.g. the ping-pong operator of :mod:`repro.engine`).

        ``zero=False`` skips the zero-fill of a caller-provided ``out``;
        it is reserved for kernels that provably write every element
        (the engine's bound path) — the format kernels themselves rely
        on the zeroing.
        """
        if out is None:
            return np.zeros(self.nrows, dtype=self._dtype)
        result = check_dense_vector(out, self.nrows, name="out")
        if result.dtype != self._dtype:
            raise ValueError(
                f"out has dtype {result.dtype}, expected {self._dtype}"
            )
        if result is not out or not out.flags.c_contiguous:
            raise ValueError("out must be a C-contiguous ndarray")
        if x is not None and np.may_share_memory(result, x):
            raise ValueError(
                "out aliases the input vector x; kernels overwrite out "
                "while still reading x — pass a separate output buffer"
            )
        if zero:
            result[:] = 0.0
        return result

    def todense(self) -> np.ndarray:
        """Materialise as a dense ndarray (small matrices / tests only)."""
        return self.to_coo().todense()

    def to_dense(self) -> np.ndarray:
        """Alias of :meth:`todense` (the registry-facing spelling)."""
        return self.todense()

    @classmethod
    def from_dense(cls, dense: np.ndarray, **kwargs) -> "SparseMatrixFormat":
        """Build this format from a dense 2-D array via COO interchange.

        Non-zero entries of ``dense`` become stored entries; format
        kwargs (e.g. chunk sizes) pass through to :meth:`from_coo`.
        COO overrides this with a direct constructor.
        """
        from repro.formats.coo import COOMatrix

        return cls.from_coo(COOMatrix.from_dense(dense), **kwargs)

    def check_rhs_block(
        self, X: np.ndarray, out: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Validate an (ncols, k) RHS block and its (nrows, k) output."""
        X = np.asarray(X)
        if X.ndim != 2 or X.shape[0] != self.ncols:
            raise ValueError(
                f"X must have shape ({self.ncols}, k), got {X.shape}"
            )
        if X.dtype != self._dtype:
            X = X.astype(self._dtype)
        k = X.shape[1]
        if out is None:
            out = np.empty((self.nrows, k), dtype=self._dtype)
        elif out.shape != (self.nrows, k) or out.dtype != self._dtype:
            raise ValueError(
                f"out must be a ({self.nrows}, {k}) array of {self._dtype}"
            )
        elif np.may_share_memory(out, X):
            raise ValueError(
                "out aliases the input block X; pass a separate buffer"
            )
        return X, out

    def spmm(self, X: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Multi-vector product ``Y = A @ X`` for ``X`` of shape (ncols, k).

        Block Krylov methods and KPM batches use this.  Dispatch goes
        through the batched block-of-vectors kernels registered under
        ``op="spmm"`` in the central registry (:mod:`repro.ops`, one
        fused sweep over the stored entries per format); formats
        without a registered kernel fall back to
        :meth:`spmm_percolumn`.
        """
        X, out = self.check_rhs_block(X, out)
        from repro.ops.spmm_kernels import spmm_dispatch  # late: avoid cycle

        return spmm_dispatch(self, X, out)

    def spmm_percolumn(
        self, X: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Reference multi-vector product looping :meth:`spmv` per column.

        Kept as the oracle the batched kernels are tested against.  For
        Fortran-ordered ``X`` the column views are already contiguous,
        so no per-column copy happens.
        """
        X, out = self.check_rhs_block(X, out)
        col_buf = np.zeros(self.nrows, dtype=self._dtype)
        for j in range(X.shape[1]):
            xj = X[:, j]
            if not xj.flags.c_contiguous:
                xj = np.ascontiguousarray(xj)
            out[:, j] = self.spmv(xj, out=col_buf)
        return out

    def diagonal(self) -> np.ndarray:
        """Main-diagonal entries (missing entries are 0).

        Used by the Jacobi preconditioner; square matrices only.
        """
        if self.nrows != self.ncols:
            raise ValueError("diagonal() requires a square matrix")
        coo = self.to_coo()
        diag = np.zeros(self.nrows, dtype=self._dtype)
        on_diag = coo.rows == coo.cols
        diag[coo.rows[on_diag]] = coo.values[on_diag]
        return diag

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {self.nrows}x{self.ncols} "
            f"nnz={self.nnz} dtype={self.dtype} bytes={self.nbytes}>"
        )
