"""BELLPACK (Choi, Singh, Vuduc): blocked ELLPACK.

The second "a priori structure" format the paper positions pJDS
against: the matrix is tiled into dense ``br x bc`` blocks; the
*blocks* are stored in ELLPACK fashion (each block-row padded to the
maximal block count).  For matrices that really consist of dense
sub-blocks (DLR2's 5x5, DLR1's 6x6) this amortises one column index
over ``br*bc`` values; for unstructured matrices the explicit zeros
inside partially-filled blocks blow the footprint up — exactly the
trade-off that motivates the structure-agnostic pJDS.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.formats.base import INDEX_DTYPE, SparseMatrixFormat, index_nbytes
from repro.formats.coo import COOMatrix
from repro.utils.validation import check_positive_int

__all__ = ["BELLPACKMatrix"]


class BELLPACKMatrix(SparseMatrixFormat):
    """Blocked ELLPACK with dense ``br x bc`` tiles."""

    name = "BELLPACK"

    def __init__(
        self,
        block_val: np.ndarray,  # (width, nblockrows, br, bc)
        block_col: np.ndarray,  # (width, nblockrows) block-column ids
        blocks_per_row: np.ndarray,  # true block count per block-row
        shape: tuple[int, int],
        nnz: int,
    ):
        if block_val.ndim != 4:
            raise ValueError("block_val must be 4-D (width, nbr, br, bc)")
        width, nbr, br, bc = block_val.shape
        if block_col.shape != (width, nbr):
            raise ValueError("block_col must be (width, nblockrows)")
        if blocks_per_row.shape != (nbr,):
            raise ValueError("blocks_per_row must have one entry per block-row")
        dtype = block_val.dtype
        super().__init__(shape, nnz=nnz, dtype=dtype)
        if nbr * br < shape[0]:
            raise ValueError("block grid does not cover the row space")
        self._val = np.ascontiguousarray(block_val)
        self._col = np.ascontiguousarray(block_col, dtype=INDEX_DTYPE)
        self._blocks = np.ascontiguousarray(blocks_per_row, dtype=INDEX_DTYPE)

    # ------------------------------------------------------------------
    @property
    def block_shape(self) -> tuple[int, int]:
        return (self._val.shape[2], self._val.shape[3])

    @property
    def width(self) -> int:
        """Stored blocks per block-row (the padded maximum)."""
        return self._val.shape[0]

    @property
    def nblockrows(self) -> int:
        return self._val.shape[1]

    @property
    def blocks_per_row(self) -> np.ndarray:
        v = self._blocks.view()
        v.flags.writeable = False
        return v

    @property
    def stored_blocks(self) -> int:
        return self.width * self.nblockrows

    @property
    def fill_ratio(self) -> float:
        """Stored values per actual non-zero (>= 1; 1 = perfect tiling)."""
        if self.nnz == 0:
            return 1.0
        return self.stored_elements / self.nnz

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls, coo: COOMatrix, *, block_rows: int = 5, block_cols: int | None = None, **kwargs
    ) -> "BELLPACKMatrix":
        if kwargs:
            raise TypeError(f"unexpected kwargs for BELLPACK: {sorted(kwargs)}")
        br = check_positive_int(block_rows, "block_rows")
        bc = check_positive_int(
            block_cols if block_cols is not None else block_rows, "block_cols"
        )
        nbr = -(-coo.nrows // br)
        nbc = -(-coo.ncols // bc)

        brow = coo.rows // br
        bcol = coo.cols // bc
        # enumerate distinct blocks per block-row, assign slot ids
        keys = brow * nbc + bcol
        order = np.argsort(keys, kind="stable")
        sk = keys[order]
        first = np.ones(sk.shape[0], dtype=bool)
        first[1:] = sk[1:] != sk[:-1]
        block_ids = np.cumsum(first) - 1  # dense id per distinct block
        nblocks = int(block_ids[-1]) + 1 if sk.size else 0

        uniq_keys = sk[first]
        uniq_brow = uniq_keys // nbc
        uniq_bcol = uniq_keys % nbc
        counts = np.bincount(uniq_brow, minlength=nbr)
        width = int(counts.max()) if nblocks else 0

        val = np.zeros((max(width, 1), nbr, br, bc), dtype=coo.dtype)
        col = np.zeros((max(width, 1), nbr), dtype=INDEX_DTYPE)
        if nblocks:
            # slot of each distinct block within its block-row
            starts = np.zeros(nbr + 1, dtype=np.int64)
            np.cumsum(counts, out=starts[1:])
            slot_of_block = np.arange(nblocks) - starts[uniq_brow]
            col[slot_of_block, uniq_brow] = uniq_bcol
            # scatter entries into their block interiors
            entry_block = np.empty(coo.nnz, dtype=np.int64)
            entry_block[order] = block_ids
            r_in = coo.rows - brow * br
            c_in = coo.cols - bcol * bc
            val[
                slot_of_block[entry_block],
                brow,
                r_in,
                c_in,
            ] = coo.values
        return cls(
            val[: max(width, 1)],
            col,
            counts.astype(INDEX_DTYPE),
            coo.shape,
            coo.nnz,
        )

    # ------------------------------------------------------------------
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x = self.check_rhs(x)
        y = self.alloc_result(out, x)
        br, bc = self.block_shape
        nbr = self.nblockrows
        # pad x to the block grid, accumulate block-row results in the
        # matrix's native dtype (x is already coerced by check_rhs)
        xpad = np.zeros(-(-self.ncols // bc) * bc, dtype=self._dtype)
        xpad[: self.ncols] = x
        xblocks = xpad.reshape(-1, bc)
        acc = np.zeros((nbr, br), dtype=self._dtype)
        for j in range(self.width):
            active = self._blocks > j
            if not active.any():
                break
            idx = np.nonzero(active)[0]
            blocks = self._val[j, idx]  # (k, br, bc)
            xs = xblocks[self._col[j, idx]]  # (k, bc)
            acc[idx] += np.einsum("krc,kc->kr", blocks, xs)
        y[:] = acc.reshape(-1)[: self.nrows]
        return y

    def to_coo(self) -> COOMatrix:
        br, bc = self.block_shape
        rows_, cols_, vals_ = [], [], []
        for j in range(self.width):
            idx = np.nonzero(self._blocks > j)[0]
            for b in idx:
                block = self._val[j, b]
                r, c = np.nonzero(block)
                if r.size == 0:
                    continue
                rows_.append(b * br + r)
                cols_.append(self._col[j, b] * bc + c)
                vals_.append(block[r, c])
        if rows_:
            rows = np.concatenate(rows_)
            cols = np.concatenate(cols_)
            vals = np.concatenate(vals_)
            keep = (rows < self.nrows) & (cols < self.ncols)
            rows, cols, vals = rows[keep], cols[keep], vals[keep]
        else:
            rows = np.empty(0, dtype=INDEX_DTYPE)
            cols = np.empty(0, dtype=INDEX_DTYPE)
            vals = np.empty(0, dtype=self._dtype)
        return COOMatrix(rows, cols, vals, self.shape, sum_duplicates=False)

    def memory_breakdown(self) -> Mapping[str, int]:
        br, bc = self.block_shape
        slots = self.stored_blocks * br * bc
        return {
            "val": slots * self.value_itemsize,
            "col_idx": index_nbytes(self.stored_blocks),
            "blocks_per_row": index_nbytes(self.nblockrows),
        }

    def row_lengths(self) -> np.ndarray:
        return self.to_coo().row_lengths()
