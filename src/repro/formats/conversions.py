"""Format registry and generic conversion helpers.

``FORMATS`` maps the short names used throughout the benchmarks
(``"CRS"``, ``"ELLPACK"``, ``"ELLPACK-R"``, ``"JDS"``, ``"pJDS"``,
``"SELL-C-sigma"``, ``"COO"``) to their classes, and :func:`convert`
routes any format to any other through COO.
"""

from __future__ import annotations

from typing import Type

from repro.formats.base import SparseMatrixFormat
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.ellpack import ELLPACKMatrix
from repro.formats.ellpack_r import ELLPACKRMatrix

__all__ = ["FORMATS", "convert", "register_format", "available_formats"]

FORMATS: dict[str, Type[SparseMatrixFormat]] = {
    COOMatrix.name: COOMatrix,
    CSRMatrix.name: CSRMatrix,
    ELLPACKMatrix.name: ELLPACKMatrix,
    ELLPACKRMatrix.name: ELLPACKRMatrix,
}


def register_format(cls: Type[SparseMatrixFormat]) -> Type[SparseMatrixFormat]:
    """Register a format class under its ``name`` (idempotent)."""
    existing = FORMATS.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"format name {cls.name!r} already registered by "
            f"{existing.__module__}.{existing.__qualname__}"
        )
    FORMATS[cls.name] = cls
    return cls


def available_formats() -> list[str]:
    """Names of all registered formats, sorted."""
    _register_core_formats()
    return sorted(FORMATS)


def convert(
    matrix: SparseMatrixFormat, target: str | Type[SparseMatrixFormat], **kwargs
) -> SparseMatrixFormat:
    """Convert ``matrix`` to the ``target`` format (name or class).

    Extra keyword arguments are passed to the target's ``from_coo``
    (e.g. ``block_rows=`` for pJDS, ``sigma=`` for SELL).
    """
    _register_core_formats()
    if isinstance(target, str):
        try:
            cls = FORMATS[target]
        except KeyError:
            raise ValueError(
                f"unknown format {target!r}; available: {available_formats()}"
            ) from None
    else:
        cls = target
    if type(matrix) is cls and not kwargs:
        return matrix
    return cls.from_coo(matrix.to_coo(), **kwargs)


def _register_core_formats() -> None:
    """Register the remaining formats lazily: they import repro.formats
    themselves, so registering at module import time would cycle."""
    from repro.core.jds import JDSMatrix
    from repro.core.pjds import PJDSMatrix
    from repro.core.sell import SELLMatrix
    from repro.formats.argcsr import ARGCSRMatrix
    from repro.formats.bellpack import BELLPACKMatrix
    from repro.formats.cmrs import CMRSMatrix
    from repro.formats.ellr_t import ELLRTMatrix

    for cls in (
        JDSMatrix,
        PJDSMatrix,
        SELLMatrix,
        BELLPACKMatrix,
        ELLRTMatrix,
        CMRSMatrix,
        ARGCSRMatrix,
    ):
        if cls.name not in FORMATS:
            register_format(cls)
