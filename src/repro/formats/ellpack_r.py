"""ELLPACK-R (Vazquez, Fernandez, Garzon 2011) — Listing 1 of the paper.

Identical device storage to plain ELLPACK plus one extra array
``rowmax[]`` holding the true non-zero count of each row, so threads
stop at the end of their row instead of streaming the zero fill
(Fig. 2b).  The *storage* overhead is unchanged; only executed work and
transferred bytes shrink, which is why the distinction lives in the
GPU execution model rather than in the NumPy kernel (a vectorised
column sweep cannot profitably skip scattered inactive rows).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.formats.base import index_nbytes
from repro.formats.coo import COOMatrix
from repro.formats.ellpack import ELLPACKMatrix

__all__ = ["ELLPACKRMatrix"]


class ELLPACKRMatrix(ELLPACKMatrix):
    """ELLPACK with per-row lengths (``rowmax`` of Listing 1)."""

    name = "ELLPACK-R"

    @property
    def rowmax(self) -> np.ndarray:
        """Per-row non-zero counts, padded rows included (the ``rowmax[]``
        array of Listing 1)."""
        v = self._row_lengths.view()
        v.flags.writeable = False
        return v

    @classmethod
    def from_coo(cls, coo: COOMatrix, *, row_pad: int = 32, **kwargs) -> "ELLPACKRMatrix":
        if kwargs:
            raise TypeError(f"unexpected kwargs for ELLPACK-R: {sorted(kwargs)}")
        base = ELLPACKMatrix.from_coo(coo, row_pad=row_pad)
        # row_lengths() trims padding rows; the constructor wants them all
        lengths = base._row_lengths.copy()  # noqa: SLF001 - same class family
        return cls(base.val.copy(), base.col.copy(), lengths, coo.shape)

    def memory_breakdown(self) -> Mapping[str, int]:
        breakdown = dict(super().memory_breakdown())
        breakdown["rowmax"] = index_nbytes(self.padded_rows)
        return breakdown

    def executed_column_rows(self, j: int) -> int:
        """Rows a GPU kernel actually works on in jagged column ``j``.

        For ELLPACK-R a thread leaves the loop after ``rowmax[i]``
        iterations, so only rows with length > j execute; the executor
        still *reserves* the whole warp until its longest thread is done
        (the light boxes of Fig. 2b — modelled in :mod:`repro.gpu`).
        """
        if not 0 <= j < max(self.width, 1):
            raise ValueError(f"column {j} out of range for width {self.width}")
        return int(np.count_nonzero(self._row_lengths > j))
