"""ELLR-T (Vazquez et al.): ELLPACK-R with T threads per row.

The paper lists ELLR-T among the tuned alternatives it measures pJDS
against ("formats such as, e.g., BELLPACK or ELLR-T ... use a priori
knowledge about the matrix structure [or] matrix-dependent tuning
parameters").  ELLR-T assigns ``T`` consecutive threads to each row:
thread ``t`` accumulates the elements ``t, t+T, t+2T, ...`` and a
shared-memory reduction combines the partials.  Long rows therefore
occupy a warp for ``ceil(len/T)`` iterations instead of ``len`` —
less imbalance — at the price of the reduction and of padding the
stored width to a multiple of ``T``.

Host-side the arithmetic is identical to ELLPACK-R; the difference
lives in the GPU execution model (see ``repro.gpu.trace``).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.formats.coo import COOMatrix
from repro.formats.ellpack import build_ell_arrays
from repro.formats.ellpack_r import ELLPACKRMatrix
from repro.utils.validation import check_positive_int

__all__ = ["ELLRTMatrix"]


class ELLRTMatrix(ELLPACKRMatrix):
    """ELLPACK-R storage with a threads-per-row tuning parameter ``T``.

    ``T`` must divide the warp size; the stored width is padded to a
    multiple of ``T`` so every thread group reads aligned chunks.
    """

    name = "ELLR-T"

    def __init__(self, *args, threads_per_row: int = 1, **kwargs):
        super().__init__(*args, **kwargs)
        self._threads_per_row = check_positive_int(
            threads_per_row, "threads_per_row"
        )

    @property
    def threads_per_row(self) -> int:
        """The tuning parameter T (threads cooperating on one row)."""
        return self._threads_per_row

    @classmethod
    def from_coo(
        cls,
        coo: COOMatrix,
        *,
        threads_per_row: int = 4,
        row_pad: int = 32,
        **kwargs,
    ) -> "ELLRTMatrix":
        if kwargs:
            raise TypeError(f"unexpected kwargs for ELLR-T: {sorted(kwargs)}")
        T = check_positive_int(threads_per_row, "threads_per_row")
        row_pad = check_positive_int(row_pad, "row_pad")
        if row_pad % T != 0:
            raise ValueError(
                f"threads_per_row={T} must divide the warp size ({row_pad})"
            )
        padded = -(-coo.nrows // row_pad) * row_pad
        lengths = np.bincount(coo.rows, minlength=coo.nrows)
        width = int(lengths.max()) if coo.nnz else 0
        if coo.ncols:
            # pad the width to a multiple of T (padding points at column
            # 0, which only exists when there is at least one column)
            width = -(-max(width, 1) // T) * T
        val, col, row_lengths = build_ell_arrays(coo, padded, width)
        return cls(val, col, row_lengths, coo.shape, threads_per_row=T)

    def memory_breakdown(self) -> Mapping[str, int]:
        # identical arrays to ELLPACK-R (the T-padding is inside width)
        return super().memory_breakdown()

    def row_iterations(self) -> np.ndarray:
        """Warp iterations each row occupies: ceil(rowmax / T)."""
        T = self._threads_per_row
        return -(-self.rowmax // T)
