"""ARG-CSR — adaptive row-grouped CSR (Heller & Oberhuber, arXiv:1203.5737).

Row-grouped CSR buckets the rows into *groups* of similar length and
stores each group as its own small dense rectangle, padded only to the
group's width instead of the global maximum.  The *adaptive* variant
chooses the group boundaries from the actual row-length distribution;
here each non-empty row joins the group of the next power-of-two
``>=`` its length, so padding within a group is bounded below 2x and
the number of groups is at most ``log2(Nmax) + 1``.

Layout (flat arrays, one rectangle per group):

* ``group_ptr[g]:group_ptr[g+1]`` — the group's value/column slots, a
  row-major ``(n_g, group_width[g])`` rectangle (padding ``val = 0``,
  ``col = 0``),
* ``group_rows_ptr[g]:group_rows_ptr[g+1]`` — the group's slice of
  ``row_ids`` (original row numbers, ascending) and ``true_lengths``.

Rows keep their original identity — ARG-CSR does **not** permute the
result vector, unlike the sort-based JDS/SELL family; the grouping is
an indirection, not a reordering.  On the GPU each group launches with
one thread per row reading its rectangle column-by-column; the device
rectangle is column-major so those reads coalesce (see
``repro.gpu.trace``).  The host arrays stay row-major, which is the
layout the vectorised and compiled row-sweep kernels want.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.formats.base import INDEX_DTYPE, SparseMatrixFormat, index_nbytes
from repro.formats.coo import COOMatrix
from repro.utils.validation import as_1d_array, check_shape

__all__ = ["ARGCSRMatrix"]


def _width_classes(lengths: np.ndarray) -> np.ndarray:
    """Next power of two >= each (positive) row length."""
    # exact for lengths up to 2**53: log2 of a power of two is integral
    return (
        2 ** np.ceil(np.log2(lengths.astype(np.float64))).astype(INDEX_DTYPE)
    ).astype(INDEX_DTYPE)


class ARGCSRMatrix(SparseMatrixFormat):
    """Adaptive row-grouped CSR with power-of-two length classes.

    Parameters
    ----------
    group_ptr : array_like of int, shape (ngroups + 1,)
        Flat slot offset of each group's rectangle.
    group_width : array_like of int, shape (ngroups,)
        Padded row width of each group, strictly increasing.
    group_rows_ptr : array_like of int, shape (ngroups + 1,)
        Offset of each group's slice of ``row_ids``.
    row_ids : array_like of int, shape (n_stored_rows,)
        Original row index of each stored (non-empty) row.
    true_lengths : array_like of int, shape (n_stored_rows,)
        Actual non-zero count of each stored row (padding excluded).
    col_idx, values : array_like, shape (group_ptr[-1],)
        Flat row-major rectangles; padding slots hold ``col 0``/``val 0``.
    shape : (int, int)
        Matrix dimensions.
    """

    name = "ARG-CSR"

    def __init__(
        self,
        group_ptr,
        group_width,
        group_rows_ptr,
        row_ids,
        true_lengths,
        col_idx,
        values,
        shape: tuple[int, int],
    ):
        shape = check_shape(shape, allow_empty=True)
        group_ptr = as_1d_array(group_ptr, dtype=INDEX_DTYPE, name="group_ptr")
        group_width = as_1d_array(
            group_width, dtype=INDEX_DTYPE, name="group_width"
        )
        group_rows_ptr = as_1d_array(
            group_rows_ptr, dtype=INDEX_DTYPE, name="group_rows_ptr"
        )
        row_ids = as_1d_array(row_ids, dtype=INDEX_DTYPE, name="row_ids")
        true_lengths = as_1d_array(
            true_lengths, dtype=INDEX_DTYPE, name="true_lengths"
        )
        col_idx = as_1d_array(col_idx, dtype=INDEX_DTYPE, name="col_idx")
        values = as_1d_array(values, name="values")

        ngroups = group_width.size
        if group_ptr.shape != (ngroups + 1,) or group_rows_ptr.shape != (
            ngroups + 1,
        ):
            raise ValueError(
                "group_ptr and group_rows_ptr must have ngroups + 1 = "
                f"{ngroups + 1} entries, got {group_ptr.size}, "
                f"{group_rows_ptr.size}"
            )
        if ngroups and (
            group_ptr[0] != 0
            or group_rows_ptr[0] != 0
            or np.any(np.diff(group_ptr) < 0)
            or np.any(np.diff(group_rows_ptr) < 0)
        ):
            raise ValueError("group pointers must start at 0, non-decreasing")
        if np.any(group_width <= 0):
            raise ValueError("group_width entries must be positive")
        if ngroups and np.any(np.diff(group_width) <= 0):
            raise ValueError("group_width must be strictly increasing")
        n_groups_rows = np.diff(group_rows_ptr) if ngroups else group_width
        if ngroups and np.any(
            np.diff(group_ptr) != n_groups_rows * group_width
        ):
            raise ValueError(
                "each group's slot count must equal n_rows * group_width"
            )

        total_slots = int(group_ptr[-1]) if ngroups else 0
        n_stored = int(group_rows_ptr[-1]) if ngroups else 0
        if row_ids.size != n_stored or true_lengths.size != n_stored:
            raise ValueError(
                f"row_ids and true_lengths must have {n_stored} entries, "
                f"got {row_ids.size}, {true_lengths.size}"
            )
        if col_idx.size != total_slots or values.size != total_slots:
            raise ValueError(
                f"col_idx and values must have group_ptr[-1] = "
                f"{total_slots} slots, got {col_idx.size}, {values.size}"
            )
        if n_stored:
            if row_ids.min() < 0 or row_ids.max() >= shape[0]:
                raise ValueError("row_ids out of range")
            if np.unique(row_ids).size != n_stored:
                raise ValueError("row_ids must be unique")
            if np.any(true_lengths <= 0):
                raise ValueError("stored rows must have positive length")
        if total_slots and (col_idx.min() < 0 or col_idx.max() >= shape[1]):
            raise ValueError("col_idx out of range")

        super().__init__(
            shape, nnz=int(true_lengths.sum()), dtype=values.dtype
        )
        self._group_ptr = group_ptr
        self._group_width = group_width
        self._group_rows_ptr = group_rows_ptr
        self._row_ids = row_ids
        self._true_lengths = true_lengths
        self._col_idx = col_idx
        self._val = values

    # ------------------------------------------------------------------
    # raw data access (read-only views)
    # ------------------------------------------------------------------
    @property
    def ngroups(self) -> int:
        return self._group_width.size

    @property
    def group_ptr(self) -> np.ndarray:
        v = self._group_ptr.view()
        v.flags.writeable = False
        return v

    @property
    def group_width(self) -> np.ndarray:
        v = self._group_width.view()
        v.flags.writeable = False
        return v

    @property
    def group_rows_ptr(self) -> np.ndarray:
        v = self._group_rows_ptr.view()
        v.flags.writeable = False
        return v

    @property
    def row_ids(self) -> np.ndarray:
        v = self._row_ids.view()
        v.flags.writeable = False
        return v

    @property
    def true_lengths(self) -> np.ndarray:
        v = self._true_lengths.view()
        v.flags.writeable = False
        return v

    @property
    def col_idx(self) -> np.ndarray:
        v = self._col_idx.view()
        v.flags.writeable = False
        return v

    @property
    def val(self) -> np.ndarray:
        v = self._val.view()
        v.flags.writeable = False
        return v

    @property
    def total_slots(self) -> int:
        """Stored value slots including the per-group padding."""
        return int(self._group_ptr[-1]) if self.ngroups else 0

    def group_rect(self, g: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Group ``g``'s ``(values, cols, row_ids)`` rectangle views.

        ``values``/``cols`` have shape ``(n_g, group_width[g])``.
        """
        lo, hi = int(self._group_ptr[g]), int(self._group_ptr[g + 1])
        w = int(self._group_width[g])
        r0, r1 = (
            int(self._group_rows_ptr[g]),
            int(self._group_rows_ptr[g + 1]),
        )
        return (
            self._val[lo:hi].reshape(r1 - r0, w),
            self._col_idx[lo:hi].reshape(r1 - r0, w),
            self._row_ids[r0:r1],
        )

    # ------------------------------------------------------------------
    # SparseMatrixFormat interface
    # ------------------------------------------------------------------
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x = self.check_rhs(x)
        y = self.alloc_result(out, x)
        for g in range(self.ngroups):
            vals, cols, rows = self.group_rect(g)
            # padding contributes 0 * x[0]; one fused gather+reduce per
            # group rectangle
            y[rows] = (vals * x[cols]).sum(axis=1)
        return y

    def to_coo(self) -> COOMatrix:
        rows_parts, cols_parts, vals_parts = [], [], []
        for g in range(self.ngroups):
            vals, cols, rows = self.group_rect(g)
            r0, r1 = (
                int(self._group_rows_ptr[g]),
                int(self._group_rows_ptr[g + 1]),
            )
            lens = self._true_lengths[r0:r1]
            keep = (
                np.arange(int(self._group_width[g]), dtype=INDEX_DTYPE)[None, :]
                < lens[:, None]
            )
            rows_parts.append(np.repeat(rows, lens))
            cols_parts.append(cols[keep])
            vals_parts.append(vals[keep])
        if not rows_parts:
            empty = np.empty(0, dtype=INDEX_DTYPE)
            return COOMatrix(
                empty,
                empty,
                np.empty(0, dtype=self._dtype),
                self.shape,
                sum_duplicates=False,
            )
        return COOMatrix(
            np.concatenate(rows_parts),
            np.concatenate(cols_parts),
            np.concatenate(vals_parts),
            self.shape,
            sum_duplicates=False,
        )

    @classmethod
    def from_coo(cls, coo: COOMatrix, **kwargs) -> "ARGCSRMatrix":
        if kwargs:
            raise TypeError(f"unexpected kwargs for ARG-CSR: {sorted(kwargs)}")
        nrows = coo.nrows
        lengths = np.bincount(coo.rows, minlength=nrows).astype(INDEX_DTYPE)
        row_ptr = np.zeros(nrows + 1, dtype=INDEX_DTYPE)
        np.cumsum(lengths, out=row_ptr[1:])

        rows_nz = np.flatnonzero(lengths).astype(INDEX_DTYPE)
        lengths_nz = lengths[rows_nz]
        if rows_nz.size == 0:
            empty = np.empty(0, dtype=INDEX_DTYPE)
            return cls(
                np.zeros(1, dtype=INDEX_DTYPE),
                empty,
                np.zeros(1, dtype=INDEX_DTYPE),
                empty,
                empty,
                empty,
                np.empty(0, dtype=coo.values.dtype),
                coo.shape,
            )

        widths = _width_classes(lengths_nz)
        # groups ascend by width; rows_nz is ascending, and the stable
        # sort keeps rows ascending within each group
        order = np.argsort(widths, kind="stable")
        row_ids = rows_nz[order]
        true_lengths = lengths_nz[order]
        group_width, counts = np.unique(widths, return_counts=True)
        ngroups = group_width.size
        group_rows_ptr = np.zeros(ngroups + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=group_rows_ptr[1:])
        group_ptr = np.zeros(ngroups + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts * group_width, out=group_ptr[1:])

        # flat destination of each stored row's first slot
        group_of = np.repeat(
            np.arange(ngroups, dtype=INDEX_DTYPE), counts
        )
        within = (
            np.arange(row_ids.size, dtype=INDEX_DTYPE)
            - group_rows_ptr[group_of]
        )
        row_base = np.zeros(nrows, dtype=INDEX_DTYPE)
        row_base[row_ids] = group_ptr[group_of] + within * group_width[group_of]

        total_slots = int(group_ptr[-1])
        val = np.zeros(total_slots, dtype=coo.values.dtype)
        col = np.zeros(total_slots, dtype=INDEX_DTYPE)
        # entry j-within-row follows canonical COO order (ascending col)
        j = np.arange(coo.nnz, dtype=INDEX_DTYPE) - row_ptr[coo.rows]
        pos = row_base[coo.rows] + j
        val[pos] = coo.values
        col[pos] = coo.cols

        return cls(
            group_ptr,
            group_width,
            group_rows_ptr,
            row_ids,
            true_lengths,
            col,
            val,
            coo.shape,
        )

    def memory_breakdown(self) -> Mapping[str, int]:
        n_stored = self._row_ids.size
        return {
            "val": self.total_slots * self.value_itemsize,
            "col_idx": index_nbytes(self.total_slots),
            "group_ptr": index_nbytes(self.ngroups + 1),
            "group_width": index_nbytes(self.ngroups),
            "group_rows_ptr": index_nbytes(self.ngroups + 1),
            "row_ids": index_nbytes(n_stored),
            "row_length": index_nbytes(n_stored),
        }

    @property
    def spmv_aux_traffic_bytes(self) -> int:
        """Per-spmv metadata bytes beyond val/col_idx (Eq.-1 overhead).

        The group descriptors plus the per-row id/length streams — what
        replaces CRS's row pointer in the code-balance term.
        """
        n_stored = self._row_ids.size
        return index_nbytes(3 * (self.ngroups + 1) + 2 * n_stored)

    def row_lengths(self) -> np.ndarray:
        out = np.zeros(self.nrows, dtype=INDEX_DTYPE)
        out[self._row_ids] = self._true_lengths
        return out
