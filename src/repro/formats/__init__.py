"""Baseline sparse storage formats (substrate layer).

COO is the interchange format, CRS the CPU baseline of Table I,
ELLPACK/ELLPACK-R the GPU baselines the pJDS contribution is measured
against (Sect. II-A).
"""

from repro.formats.base import INDEX_DTYPE, SparseMatrixFormat, index_nbytes
from repro.formats.conversions import (
    FORMATS,
    available_formats,
    convert,
    register_format,
)
from repro.formats.argcsr import ARGCSRMatrix
from repro.formats.bellpack import BELLPACKMatrix
from repro.formats.cmrs import CMRSMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.ellpack import ELLPACKMatrix
from repro.formats.ellpack_r import ELLPACKRMatrix
from repro.formats.ellr_t import ELLRTMatrix
from repro.formats.verify import FormatInvariantError, verify_format

__all__ = [
    "INDEX_DTYPE",
    "SparseMatrixFormat",
    "index_nbytes",
    "FORMATS",
    "available_formats",
    "convert",
    "register_format",
    "ARGCSRMatrix",
    "BELLPACKMatrix",
    "CMRSMatrix",
    "COOMatrix",
    "CSRMatrix",
    "ELLPACKMatrix",
    "ELLPACKRMatrix",
    "ELLRTMatrix",
    "FormatInvariantError",
    "verify_format",
]
