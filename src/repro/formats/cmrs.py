"""CMRS — compressed multi-row storage (Koza et al., arXiv:1203.2946).

CMRS generalises CRS by grouping every ``HS`` consecutive rows into a
*strip*.  The entry stream stays exactly the CRS/COO canonical order
(row-major, ascending column within a row, **zero padding**), but the
row pointer array is replaced by two cheaper structures:

* ``strip_ptr`` — one entry offset per strip (``nrows / HS`` entries
  instead of ``nrows``), and
* ``row_in_strip`` — a per-entry *row-within-strip* counter in
  ``[0, HS)``.  With ``HS <= 256`` it packs into one byte (the paper
  tucks it into spare bits of the column index), which is how the
  storage accounting below counts it.

On the GPU the point is coalescing: a warp sweeps a strip's entries in
flat order — fully coalesced loads of ``val``/``col_idx`` regardless of
how ragged the row lengths are — and each lane routes its partial
product to ``y[strip * HS + row_in_strip]``.  There is no padding at
all, so storage is ``nnz``-proportional like CRS, unlike the
ELLPACK/SELL/pJDS family.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.formats.base import INDEX_DTYPE, SparseMatrixFormat, index_nbytes
from repro.formats.coo import COOMatrix
from repro.utils.validation import (
    as_1d_array,
    check_index_array,
    check_positive_int,
    check_shape,
)

__all__ = ["CMRSMatrix", "DEFAULT_STRIP_HEIGHT"]

#: Default rows per strip.  Koza et al. tie HS to the warp width /
#: occupancy trade-off; 4 keeps the row counter in 2 bits and matches
#: their best configurations for the scalar-entry matrices we model.
DEFAULT_STRIP_HEIGHT = 4

#: ``row_in_strip`` is accounted at one byte per entry, so the strip
#: height must stay byte-representable.
MAX_STRIP_HEIGHT = 256


class CMRSMatrix(SparseMatrixFormat):
    """Strip-based compressed multi-row storage.

    Parameters
    ----------
    strip_ptr : array_like of int, shape (nstrips + 1,)
        Flat entry offset of each strip; ``strip_ptr[-1] == nnz``.
    row_in_strip : array_like of int, shape (nnz,)
        Row-within-strip counter of each entry, in ``[0, strip_height)``.
    col_idx : array_like of int, shape (nnz,)
        Column index of each entry.
    values : array_like of float, shape (nnz,)
        Entry values, row-major canonical order.
    shape : (int, int)
        Matrix dimensions.
    strip_height : int
        Rows per strip (``HS``), in ``[1, 256]``.
    """

    name = "CMRS"

    def __init__(
        self,
        strip_ptr,
        row_in_strip,
        col_idx,
        values,
        shape: tuple[int, int],
        strip_height: int = DEFAULT_STRIP_HEIGHT,
    ):
        shape = check_shape(shape, allow_empty=True)
        hs = check_positive_int(strip_height, "strip_height")
        if hs > MAX_STRIP_HEIGHT:
            raise ValueError(
                f"strip_height must be <= {MAX_STRIP_HEIGHT}, got {hs}"
            )
        nstrips = -(-shape[0] // hs)  # ceil(nrows / hs)

        strip_ptr = as_1d_array(
            strip_ptr, dtype=INDEX_DTYPE, name="strip_ptr"
        )
        if strip_ptr.shape != (nstrips + 1,):
            raise ValueError(
                f"strip_ptr must have shape ({nstrips + 1},) for "
                f"{shape[0]} rows at strip_height={hs}, got {strip_ptr.shape}"
            )
        if strip_ptr[0] != 0 or np.any(np.diff(strip_ptr) < 0):
            raise ValueError("strip_ptr must start at 0 and be non-decreasing")
        nnz = int(strip_ptr[-1])

        row_in_strip = as_1d_array(
            row_in_strip, dtype=INDEX_DTYPE, name="row_in_strip"
        )
        row_in_strip = check_index_array(row_in_strip, hs, "row_in_strip")
        col_idx = check_index_array(
            as_1d_array(col_idx, dtype=INDEX_DTYPE, name="col_idx"),
            shape[1],
            "col_idx",
        )
        values = as_1d_array(values, name="values")
        if not (row_in_strip.size == col_idx.size == values.size == nnz):
            raise ValueError(
                "row_in_strip, col_idx, values must have strip_ptr[-1] "
                f"= {nnz} entries, got {row_in_strip.size}, "
                f"{col_idx.size}, {values.size}"
            )

        super().__init__(shape, nnz=nnz, dtype=values.dtype)
        self._strip_height = hs
        self._nstrips = nstrips
        self._strip_ptr = strip_ptr
        self._row_in_strip = row_in_strip
        self._col_idx = col_idx
        self._val = values

    # ------------------------------------------------------------------
    # raw data access (read-only views)
    # ------------------------------------------------------------------
    @property
    def strip_height(self) -> int:
        """Rows per strip (the paper's ``HS``)."""
        return self._strip_height

    @property
    def nstrips(self) -> int:
        return self._nstrips

    @property
    def strip_ptr(self) -> np.ndarray:
        v = self._strip_ptr.view()
        v.flags.writeable = False
        return v

    @property
    def row_in_strip(self) -> np.ndarray:
        v = self._row_in_strip.view()
        v.flags.writeable = False
        return v

    @property
    def col_idx(self) -> np.ndarray:
        v = self._col_idx.view()
        v.flags.writeable = False
        return v

    @property
    def val(self) -> np.ndarray:
        v = self._val.view()
        v.flags.writeable = False
        return v

    @property
    def total_slots(self) -> int:
        """Stored value slots; CMRS carries no padding, so ``== nnz``."""
        return self._nnz

    # ------------------------------------------------------------------
    # derived host-side caches (not part of the device footprint)
    # ------------------------------------------------------------------
    @property
    def entry_rows(self) -> np.ndarray:
        """Original row index of each stored entry (cached)."""
        cached = getattr(self, "_entry_rows_cache", None)
        if cached is None:
            strip_of = np.repeat(
                np.arange(self._nstrips, dtype=INDEX_DTYPE),
                np.diff(self._strip_ptr),
            )
            cached = strip_of * self._strip_height + self._row_in_strip
            cached.flags.writeable = False
            self._entry_rows_cache = cached
        return cached

    @property
    def row_ptr(self) -> np.ndarray:
        """CRS-style row pointer recovered from the strip structure."""
        cached = getattr(self, "_row_ptr_cache", None)
        if cached is None:
            counts = np.bincount(self.entry_rows, minlength=self.nrows)
            cached = np.zeros(self.nrows + 1, dtype=INDEX_DTYPE)
            np.cumsum(counts, out=cached[1:])
            cached.flags.writeable = False
            self._row_ptr_cache = cached
        return cached

    def _row_runs(self) -> tuple[np.ndarray, np.ndarray]:
        """(run start offsets, row per run) of the row-major entry stream."""
        cached = getattr(self, "_row_runs_cache", None)
        if cached is None:
            rows = self.entry_rows
            new_run = np.empty(rows.size, dtype=bool)
            if rows.size:
                new_run[0] = True
                np.not_equal(rows[1:], rows[:-1], out=new_run[1:])
            starts = np.flatnonzero(new_run)
            cached = (starts, rows[starts])
            self._row_runs_cache = cached
        return cached

    # ------------------------------------------------------------------
    # SparseMatrixFormat interface
    # ------------------------------------------------------------------
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x = self.check_rhs(x)
        y = self.alloc_result(out, x)
        if self._nnz:
            prod = self._val * x[self._col_idx]
            starts, urows = self._row_runs()
            y[urows] = np.add.reduceat(prod, starts)
        return y

    def to_coo(self) -> COOMatrix:
        return COOMatrix(
            self.entry_rows,
            self._col_idx,
            self._val,
            self.shape,
            sum_duplicates=False,
        )

    @classmethod
    def from_coo(
        cls, coo: COOMatrix, strip_height: int = DEFAULT_STRIP_HEIGHT, **kwargs
    ) -> "CMRSMatrix":
        if kwargs:
            raise TypeError(f"unexpected kwargs for CMRS: {sorted(kwargs)}")
        hs = check_positive_int(strip_height, "strip_height")
        nrows = coo.nrows
        nstrips = -(-nrows // hs)
        counts = np.bincount(coo.rows, minlength=nrows)
        row_ptr = np.zeros(nrows + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=row_ptr[1:])
        strip_rows = np.minimum(
            np.arange(nstrips + 1, dtype=INDEX_DTYPE) * hs, nrows
        )
        strip_ptr = row_ptr[strip_rows]
        # canonical COO is already the CMRS entry order; only the row
        # index changes representation
        return cls(
            strip_ptr,
            coo.rows % hs,
            coo.cols,
            coo.values,
            coo.shape,
            strip_height=hs,
        )

    def memory_breakdown(self) -> Mapping[str, int]:
        # row_in_strip packs into one byte per entry for HS <= 256 (the
        # paper stores it in spare bits of the column index).
        return {
            "val": self._nnz * self.value_itemsize,
            "col_idx": index_nbytes(self._nnz),
            "strip_ptr": index_nbytes(self._nstrips + 1),
            "row_in_strip": self._nnz,
        }

    @property
    def spmv_aux_traffic_bytes(self) -> int:
        """Per-spmv metadata bytes beyond val/col_idx (Eq.-1 overhead).

        One strip-pointer stream plus the per-entry row counters — the
        CMRS analogue of CRS's row-pointer term.
        """
        return self._nnz + index_nbytes(self._nstrips + 1)

    def row_lengths(self) -> np.ndarray:
        return np.diff(self.row_ptr).astype(INDEX_DTYPE)
