"""COO (coordinate) format — the package's interchange representation.

Every other format converts to and from COO.  On construction the
triplets are brought into *canonical* form: sorted row-major
(row, then column) with duplicate entries summed and explicit zeros
kept (a stored zero is a non-zero slot in every GPU format, so we do
not silently drop them unless asked).
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.formats.base import INDEX_DTYPE, SparseMatrixFormat, index_nbytes
from repro.utils.validation import (
    as_1d_array,
    check_dtype,
    check_index_array,
    check_shape,
)

__all__ = ["COOMatrix"]


class COOMatrix(SparseMatrixFormat):
    """Canonical coordinate-format sparse matrix.

    Parameters
    ----------
    rows, cols : array_like of int
        Row/column index of each entry.
    values : array_like of float
        Entry values; dtype decides SP/DP.
    shape : (int, int)
        Matrix dimensions.
    sum_duplicates : bool
        When True (default) duplicate ``(row, col)`` entries are summed,
        which is the usual assembly semantic.
    drop_zeros : bool
        When True, entries that are exactly 0.0 after duplicate summing
        are removed.  Default False: explicit zeros stay stored.
    """

    name = "COO"

    def __init__(
        self,
        rows: Iterable[int],
        cols: Iterable[int],
        values: Iterable[float],
        shape: tuple[int, int],
        *,
        sum_duplicates: bool = True,
        drop_zeros: bool = False,
    ):
        shape = check_shape(shape, allow_empty=True)
        rows = check_index_array(as_1d_array(rows, name="rows"), shape[0], "rows")
        cols = check_index_array(as_1d_array(cols, name="cols"), shape[1], "cols")
        values = as_1d_array(values, name="values")
        if values.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            values = values.astype(np.float64)
        check_dtype(values.dtype, "values.dtype")
        if not (rows.size == cols.size == values.size):
            raise ValueError(
                "rows, cols, values must have equal length, got "
                f"{rows.size}, {cols.size}, {values.size}"
            )

        # canonical ordering: row-major, stable so duplicate order is kept
        order = np.lexsort((cols, rows))
        rows, cols, values = rows[order], cols[order], values[order]

        if sum_duplicates and rows.size:
            # collapse runs of identical (row, col) pairs
            new_run = np.empty(rows.size, dtype=bool)
            new_run[0] = True
            np.logical_or(
                rows[1:] != rows[:-1], cols[1:] != cols[:-1], out=new_run[1:]
            )
            group = np.cumsum(new_run) - 1
            summed = np.zeros(int(group[-1]) + 1, dtype=np.float64)
            np.add.at(summed, group, values.astype(np.float64))
            rows = rows[new_run]
            cols = cols[new_run]
            values = summed.astype(values.dtype)

        if drop_zeros and values.size:
            keep = values != 0.0
            rows, cols, values = rows[keep], cols[keep], values[keep]

        super().__init__(shape, nnz=values.size, dtype=values.dtype)
        self._rows = rows
        self._cols = cols
        self._values = values

    # ------------------------------------------------------------------
    # raw data access (read-only views)
    # ------------------------------------------------------------------
    @property
    def rows(self) -> np.ndarray:
        v = self._rows.view()
        v.flags.writeable = False
        return v

    @property
    def cols(self) -> np.ndarray:
        v = self._cols.view()
        v.flags.writeable = False
        return v

    @property
    def values(self) -> np.ndarray:
        v = self._values.view()
        v.flags.writeable = False
        return v

    # ------------------------------------------------------------------
    # SparseMatrixFormat interface
    # ------------------------------------------------------------------
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x = self.check_rhs(x)
        y = self.alloc_result(out, x)
        if self._nnz:
            # canonical form is row-major sorted: entries of one row are
            # consecutive, so row sums are independent ``reduceat``
            # segments — native dtype end-to-end, no scatter-add and no
            # float64 upcast/downcast copies.
            prod = self._values * x[self._cols]
            starts, urows = self._row_runs()
            y[urows] = np.add.reduceat(prod, starts)
        return y

    def _row_runs(self) -> tuple[np.ndarray, np.ndarray]:
        """(run start offsets, row index per run) of the sorted rows."""
        cached = getattr(self, "_row_runs_cache", None)
        if cached is None:
            new_run = np.empty(self._rows.size, dtype=bool)
            new_run[0] = True
            np.not_equal(self._rows[1:], self._rows[:-1], out=new_run[1:])
            starts = np.flatnonzero(new_run)
            cached = (starts, self._rows[starts])
            self._row_runs_cache = cached
        return cached

    def to_coo(self) -> "COOMatrix":
        return self

    @classmethod
    def from_coo(cls, coo: "COOMatrix", **kwargs) -> "COOMatrix":
        if kwargs:
            raise TypeError(f"unexpected kwargs for COO: {sorted(kwargs)}")
        return coo

    def memory_breakdown(self) -> Mapping[str, int]:
        return {
            "val": self._nnz * self.value_itemsize,
            "row_idx": index_nbytes(self._nnz),
            "col_idx": index_nbytes(self._nnz),
        }

    def row_lengths(self) -> np.ndarray:
        return np.bincount(self._rows, minlength=self.nrows).astype(INDEX_DTYPE)

    # ------------------------------------------------------------------
    # constructors / converters
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray, *, drop_zeros: bool = True) -> "COOMatrix":
        """Build from a dense 2-D array, keeping non-zero entries."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError(f"dense must be 2-D, got shape {dense.shape}")
        if drop_zeros:
            rows, cols = np.nonzero(dense)
        else:
            rows, cols = np.indices(dense.shape).reshape(2, -1)
        values = dense[rows, cols]
        return cls(rows, cols, values, dense.shape, sum_duplicates=False)

    @classmethod
    def from_scipy(cls, mat) -> "COOMatrix":
        """Build from any scipy.sparse matrix."""
        m = mat.tocoo()
        return cls(m.row, m.col, m.data, m.shape)

    def to_scipy(self):
        """Convert to ``scipy.sparse.coo_matrix``."""
        import scipy.sparse as sp

        return sp.coo_matrix(
            (self._values, (self._rows, self._cols)), shape=self.shape
        )

    def todense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=self._dtype)
        # canonical form has no duplicates, plain fancy assignment suffices
        dense[self._rows, self._cols] = self._values
        return dense

    def astype(self, dtype) -> "COOMatrix":
        """Return a copy with values cast to ``dtype`` (SP<->DP switch)."""
        dt = check_dtype(dtype)
        if dt == self._dtype:
            return self
        return COOMatrix(
            self._rows,
            self._cols,
            self._values.astype(dt),
            self.shape,
            sum_duplicates=False,
        )

    def transpose(self) -> "COOMatrix":
        """Return the transposed matrix (used by nonsymmetric solvers)."""
        return COOMatrix(
            self._cols,
            self._rows,
            self._values,
            (self.ncols, self.nrows),
            sum_duplicates=False,
        )
