"""CRS / CSR (compressed row storage) — the paper's CPU baseline format.

The paper's Table I compares GPU formats against CRS on a dual-socket
Westmere node; CRS is also the natural format for assembling, slicing
and partitioning matrices, so the distributed layer works on CSR views.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.formats.base import INDEX_DTYPE, SparseMatrixFormat, index_nbytes
from repro.formats.coo import COOMatrix
from repro.utils.validation import as_1d_array, check_index_array, check_shape

__all__ = ["CSRMatrix"]


class CSRMatrix(SparseMatrixFormat):
    """Compressed row storage: ``indptr``, ``indices``, ``data``.

    Rows are stored contiguously; ``indptr`` has length ``nrows + 1``.
    Column indices within a row are kept sorted (canonical form).
    """

    name = "CRS"

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: tuple[int, int],
    ):
        shape = check_shape(shape, allow_empty=True)
        indptr = as_1d_array(indptr, dtype=INDEX_DTYPE, name="indptr")
        if indptr.shape[0] != shape[0] + 1:
            raise ValueError(
                f"indptr must have length nrows+1={shape[0] + 1}, got {indptr.shape[0]}"
            )
        if indptr[0] != 0:
            raise ValueError("indptr[0] must be 0")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        nnz = int(indptr[-1])
        indices = check_index_array(
            as_1d_array(indices, name="indices"), shape[1], "indices"
        )
        data = as_1d_array(data, name="data")
        if indices.shape[0] != nnz or data.shape[0] != nnz:
            raise ValueError(
                f"indices/data must have length indptr[-1]={nnz}, got "
                f"{indices.shape[0]}/{data.shape[0]}"
            )
        super().__init__(shape, nnz=nnz, dtype=data.dtype)
        self._indptr = indptr
        self._indices = indices
        self._data = data

    # ------------------------------------------------------------------
    @property
    def indptr(self) -> np.ndarray:
        v = self._indptr.view()
        v.flags.writeable = False
        return v

    @property
    def indices(self) -> np.ndarray:
        v = self._indices.view()
        v.flags.writeable = False
        return v

    @property
    def data(self) -> np.ndarray:
        v = self._data.view()
        v.flags.writeable = False
        return v

    # ------------------------------------------------------------------
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x = self.check_rhs(x)
        y = self.alloc_result(out, x)
        if self._nnz == 0:
            return y
        # row-local segment sums via ``np.add.reduceat`` over the rows
        # that hold entries: honors the matrix dtype end-to-end (no
        # float64 upcast/downcast copies) and each row's sum is
        # independent of every other row, so row-block partitions of
        # the parallel backend reproduce serial results bit-for-bit.
        prod = self._data * x[self._indices]
        starts = self._nonempty_starts()
        y[self._nonempty_rows()] = np.add.reduceat(prod, starts)
        return y

    def _nonempty_rows(self) -> np.ndarray:
        """Indices of rows holding at least one entry (cached)."""
        cached = getattr(self, "_nonempty_rows_cache", None)
        if cached is None:
            cached = np.flatnonzero(np.diff(self._indptr) > 0)
            self._nonempty_rows_cache = cached
        return cached

    def _nonempty_starts(self) -> np.ndarray:
        """``indptr`` offsets of the non-empty rows (cached)."""
        cached = getattr(self, "_nonempty_starts_cache", None)
        if cached is None:
            cached = np.ascontiguousarray(self._indptr[self._nonempty_rows()])
            self._nonempty_starts_cache = cached
        return cached

    def _length_groups(self):
        """Rows bucketed by row length, entries re-permuted accordingly.

        Returns ``(idx_g, data_g, groups)`` where ``groups`` is a list
        of ``(L, rows_L)`` and ``idx_g``/``data_g`` hold the entries of
        all length-``L`` rows contiguously (each group a dense
        ``(len(rows_L), L)`` rectangle when reshaped).  This is the
        quasi-ELLPACK view the batched SpMM kernel reduces with one
        BLAS batched-GEMV per group instead of one ``reduceat`` segment
        per row.  Cached — costs one ``argsort``-free pass per matrix.
        """
        cached = getattr(self, "_length_groups_cache", None)
        if cached is None:
            lengths = np.diff(self._indptr)
            groups = []
            parts = []
            for L in np.unique(lengths):
                L = int(L)
                if L == 0:
                    continue
                rows_l = np.flatnonzero(lengths == L)
                pos = (self._indptr[rows_l][:, None] + np.arange(L)).ravel()
                parts.append(pos)
                groups.append((L, rows_l))
            if parts:
                entry_perm = np.concatenate(parts)
                idx_g = np.ascontiguousarray(self._indices[entry_perm])
                data_g = np.ascontiguousarray(self._data[entry_perm])
            else:
                idx_g = self._indices[:0]
                data_g = self._data[:0]
            cached = (idx_g, data_g, groups)
            self._length_groups_cache = cached
        return cached

    def to_coo(self) -> COOMatrix:
        rows = np.repeat(
            np.arange(self.nrows, dtype=INDEX_DTYPE), np.diff(self._indptr)
        )
        return COOMatrix(
            rows, self._indices, self._data, self.shape, sum_duplicates=False
        )

    @classmethod
    def from_coo(cls, coo: COOMatrix, **kwargs) -> "CSRMatrix":
        if kwargs:
            raise TypeError(f"unexpected kwargs for CRS: {sorted(kwargs)}")
        counts = np.bincount(coo.rows, minlength=coo.nrows)
        indptr = np.zeros(coo.nrows + 1, dtype=INDEX_DTYPE)
        np.cumsum(counts, out=indptr[1:])
        # COO canonical form is already row-major sorted
        return cls(indptr, coo.cols.copy(), coo.values.copy(), coo.shape)

    def memory_breakdown(self) -> Mapping[str, int]:
        return {
            "val": self._nnz * self.value_itemsize,
            "col_idx": index_nbytes(self._nnz),
            "row_ptr": index_nbytes(self.nrows + 1),
        }

    def row_lengths(self) -> np.ndarray:
        return np.diff(self._indptr)

    # ------------------------------------------------------------------
    # slicing used by the distributed partitioner
    # ------------------------------------------------------------------
    def row_block(self, start: int, stop: int) -> "CSRMatrix":
        """Extract rows ``[start, stop)`` as a new CSR matrix (same ncols)."""
        if not (0 <= start <= stop <= self.nrows):
            raise ValueError(
                f"row block [{start}, {stop}) out of range for {self.nrows} rows"
            )
        lo = int(self._indptr[start])
        hi = int(self._indptr[stop])
        indptr = self._indptr[start : stop + 1] - lo
        return CSRMatrix(
            indptr.copy(),
            self._indices[lo:hi].copy(),
            self._data[lo:hi].copy(),
            (stop - start, self.ncols),
        )

    def split_columns(self, mask: np.ndarray) -> tuple["CSRMatrix", "CSRMatrix"]:
        """Split into two CSR matrices by a boolean column mask.

        Entry ``(i, j)`` goes to the first result when ``mask[j]`` is True,
        else to the second.  Both results keep the full column space; the
        distributed layer uses this to separate the *local* and *nonlocal*
        parts of a process's row block (Sect. III-A of the paper).
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.ncols,):
            raise ValueError(
                f"mask must have shape ({self.ncols},), got {mask.shape}"
            )
        keep = mask[self._indices]
        row_of = np.repeat(
            np.arange(self.nrows, dtype=INDEX_DTYPE), np.diff(self._indptr)
        )

        def build(selector: np.ndarray) -> CSRMatrix:
            counts = np.bincount(row_of[selector], minlength=self.nrows)
            indptr = np.zeros(self.nrows + 1, dtype=INDEX_DTYPE)
            np.cumsum(counts, out=indptr[1:])
            return CSRMatrix(
                indptr, self._indices[selector], self._data[selector], self.shape
            )

        return build(keep), build(~keep)

    def column_set(self) -> np.ndarray:
        """Sorted unique column indices that hold at least one entry."""
        return np.unique(self._indices)

    def permute_rows(self, perm: np.ndarray) -> "CSRMatrix":
        """Return the matrix with row ``perm[k]`` moved to position ``k``."""
        perm = check_index_array(
            as_1d_array(perm, name="perm"), self.nrows, "perm"
        )
        if perm.shape[0] != self.nrows or np.unique(perm).size != self.nrows:
            raise ValueError("perm must be a permutation of all row indices")
        lengths = np.diff(self._indptr)[perm]
        indptr = np.zeros(self.nrows + 1, dtype=INDEX_DTYPE)
        np.cumsum(lengths, out=indptr[1:])
        indices = np.empty(self._nnz, dtype=INDEX_DTYPE)
        data = np.empty(self._nnz, dtype=self._dtype)
        # gather rows in permuted order; vectorised via repeat/arange math
        src_start = self._indptr[perm]
        offsets = np.arange(self._nnz, dtype=INDEX_DTYPE) - np.repeat(
            indptr[:-1], lengths
        )
        src = np.repeat(src_start, lengths) + offsets
        indices[:] = self._indices[src]
        data[:] = self._data[src]
        return CSRMatrix(indptr, indices, data, self.shape)
