"""Matrix structure analysis: the quantities Fig. 3 and Sect. II discuss.

Row-length histograms (bin size 1, relative share — exactly the axes
of Fig. 3), the relative-width statistic used to predict pJDS's data
reduction, and bandwidth/locality measures the cache model feeds on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.base import SparseMatrixFormat

__all__ = [
    "RowLengthHistogram",
    "row_length_histogram",
    "StructureStats",
    "structure_stats",
]


@dataclass(frozen=True)
class RowLengthHistogram:
    """Fig. 3 data: share of rows per row-length bin."""

    bin_edges: np.ndarray  # left edge of each bin
    counts: np.ndarray
    bin_size: int
    nrows: int

    @property
    def relative_share(self) -> np.ndarray:
        """Counts normalised by the row count (the Fig. 3 y-axis)."""
        return self.counts / max(self.nrows, 1)

    def share_at_least(self, length: int) -> float:
        """Fraction of rows with at least ``length`` non-zeros."""
        sel = self.bin_edges + self.bin_size > length
        # bins straddling `length` contribute fully; bin_size 1 is exact
        return float(self.counts[sel].sum() / max(self.nrows, 1))

    def as_rows(self) -> list[tuple[int, int, float]]:
        """(bin_start, count, relative_share) triples, non-empty bins only."""
        share = self.relative_share
        return [
            (int(e), int(c), float(s))
            for e, c, s in zip(self.bin_edges, self.counts, share)
            if c > 0
        ]


def row_length_histogram(
    matrix: SparseMatrixFormat | np.ndarray, bin_size: int = 1
) -> RowLengthHistogram:
    """Histogram of non-zeros per row ("bin size is 1 for all cases")."""
    if isinstance(matrix, SparseMatrixFormat):
        lengths = matrix.row_lengths()
        nrows = matrix.nrows
    else:
        lengths = np.asarray(matrix)
        nrows = lengths.shape[0]
    if bin_size < 1:
        raise ValueError(f"bin_size must be >= 1, got {bin_size}")
    if lengths.size == 0:
        return RowLengthHistogram(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), bin_size, 0
        )
    max_len = int(lengths.max())
    nbins = max_len // bin_size + 1
    binned = lengths // bin_size
    counts = np.bincount(binned, minlength=nbins)
    edges = np.arange(nbins, dtype=np.int64) * bin_size
    return RowLengthHistogram(edges, counts, bin_size, nrows)


@dataclass(frozen=True)
class StructureStats:
    """Summary statistics of a sparse matrix's structure."""

    nrows: int
    ncols: int
    nnz: int
    nnzr: float  # average non-zeros per row (the paper's Nnzr)
    min_row_length: int
    max_row_length: int  # the paper's Nmax_nzr
    relative_width: float  # max / max(min, 1) — the Fig. 3 discussion metric
    mean_abs_col_distance: float  # mean |col - row*ncols/nrows| (locality)
    density: float

    def as_dict(self) -> dict[str, float]:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


def structure_stats(matrix: SparseMatrixFormat) -> StructureStats:
    """Compute :class:`StructureStats` for any format (via COO)."""
    coo = matrix.to_coo()
    lengths = coo.row_lengths()
    nnz = coo.nnz
    min_len = int(lengths.min()) if lengths.size else 0
    max_len = int(lengths.max()) if lengths.size else 0
    if nnz:
        centre = (coo.rows * coo.ncols) // max(coo.nrows, 1)
        mean_dist = float(np.abs(coo.cols - centre).mean())
    else:
        mean_dist = 0.0
    return StructureStats(
        nrows=coo.nrows,
        ncols=coo.ncols,
        nnz=nnz,
        nnzr=nnz / coo.nrows,
        min_row_length=min_len,
        max_row_length=max_len,
        relative_width=max_len / max(min_len, 1),
        mean_abs_col_distance=mean_dist,
        density=nnz / (coo.nrows * coo.ncols),
    )
