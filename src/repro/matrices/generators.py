"""Synthetic sparse matrix generators.

The paper's corpus is proprietary (quantum-physics and CFD production
matrices), so the reproduction builds synthetic matrices whose
*published statistics* — dimension, average non-zeros per row
(``Nnzr``), row-length histogram (Fig. 3) and coarse structure — match.
This module provides the general building blocks; the per-matrix
recipes live in :mod:`repro.matrices.suite`.

All generators are deterministic given a seed and fully vectorised.
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import INDEX_DTYPE
from repro.formats.coo import COOMatrix
from repro.utils.validation import check_positive_int

__all__ = [
    "sample_columns",
    "random_sparse",
    "banded_sparse",
    "off_diagonal_sparse",
    "block_sparse",
    "poisson2d",
    "from_networkx",
]

_MAX_RESAMPLE_ROUNDS = 200


def sample_columns(
    row_lengths: np.ndarray,
    ncols: int,
    rng: np.random.Generator,
    *,
    bandwidth: int | None = None,
    diagonal_rows: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample distinct column indices for each row.

    Parameters
    ----------
    row_lengths : ndarray of int
        Desired non-zero count per row.
    ncols : int
        Column-space size.
    rng : numpy Generator
        Randomness source.
    bandwidth : int, optional
        When given, columns are drawn from a band of this *total* width
        centred on the (scaled) diagonal — the locality knob the cache
        model responds to.  ``None`` draws uniformly from all columns.
    diagonal_rows : ndarray, optional
        Band centre per row; defaults to ``row * ncols / nrows``.

    Returns
    -------
    rows, cols : flat index arrays of ``sum(row_lengths)`` entries with
        no duplicate ``(row, col)`` pairs.
    """
    lengths = np.asarray(row_lengths, dtype=INDEX_DTYPE)
    if lengths.ndim != 1:
        raise ValueError("row_lengths must be 1-D")
    if np.any(lengths < 0):
        raise ValueError("row_lengths must be non-negative")
    nrows = lengths.shape[0]
    ncols = check_positive_int(ncols, "ncols")
    if bandwidth is not None:
        bandwidth = check_positive_int(bandwidth, "bandwidth")
        bandwidth = min(bandwidth, ncols)
        limit = bandwidth
    else:
        limit = ncols
    if np.any(lengths > limit):
        raise ValueError(
            "a row requests more distinct columns than the sampling "
            f"window provides ({int(lengths.max())} > {limit})"
        )

    rows = np.repeat(np.arange(nrows, dtype=INDEX_DTYPE), lengths)
    total = rows.shape[0]
    if total == 0:
        return rows, np.empty(0, dtype=INDEX_DTYPE)

    if bandwidth is not None:
        if diagonal_rows is None:
            centre = (rows * ncols) // max(nrows, 1)
        else:
            centre = np.asarray(diagonal_rows, dtype=INDEX_DTYPE)[rows]
        lo = np.clip(centre - bandwidth // 2, 0, max(ncols - bandwidth, 0))

        def draw(idx: np.ndarray) -> np.ndarray:
            return lo[idx] + rng.integers(0, bandwidth, size=idx.shape[0])

    else:

        def draw(idx: np.ndarray) -> np.ndarray:
            return rng.integers(0, ncols, size=idx.shape[0])

    everything = np.arange(total, dtype=INDEX_DTYPE)
    cols = draw(everything)

    # rows requesting most of their window would make rejection sampling
    # a coupon-collector problem: draw those exactly via a permutation
    dense = lengths > 0.5 * limit
    if dense.any():
        dense_rows = np.nonzero(dense)[0]
        row_start = np.zeros(nrows + 1, dtype=INDEX_DTYPE)
        np.cumsum(lengths, out=row_start[1:])
        for i in dense_rows:
            k = int(lengths[i])
            if bandwidth is not None:
                base = int(lo[row_start[i]]) if k else 0
                choice = base + rng.permutation(bandwidth)[:k]
            else:
                choice = rng.permutation(ncols)[:k]
            cols[row_start[i] : row_start[i] + k] = choice

    # iteratively redraw colliding entries (dense rows are exact already
    # and collision-free, so the loop never touches them); collisions
    # shrink geometrically
    for _ in range(_MAX_RESAMPLE_ROUNDS):
        order = np.lexsort((cols, rows))
        rs = rows[order]
        cs = cols[order]
        dup = np.zeros(total, dtype=bool)
        dup[1:] = (rs[1:] == rs[:-1]) & (cs[1:] == cs[:-1])
        if not dup.any():
            break
        redo = order[dup]
        cols[redo] = draw(redo)
    else:  # pragma: no cover - pathological densities only
        raise RuntimeError("column sampling did not converge; density too high")
    return rows, cols.astype(INDEX_DTYPE)


def _values(rng: np.random.Generator, count: int, dtype) -> np.ndarray:
    """Nonzero standard-normal values (zero draws are nudged off zero)."""
    v = rng.standard_normal(count)
    v[v == 0.0] = 1.0
    return v.astype(dtype)


def random_sparse(
    nrows: int,
    ncols: int,
    row_lengths: np.ndarray,
    *,
    seed: int = 0,
    dtype=np.float64,
    bandwidth: int | None = None,
) -> COOMatrix:
    """Random matrix with exactly the given per-row non-zero counts."""
    nrows = check_positive_int(nrows, "nrows")
    lengths = np.asarray(row_lengths, dtype=INDEX_DTYPE)
    if lengths.shape != (nrows,):
        raise ValueError(f"row_lengths must have shape ({nrows},)")
    rng = np.random.default_rng(seed)
    rows, cols = sample_columns(lengths, ncols, rng, bandwidth=bandwidth)
    vals = _values(rng, rows.shape[0], dtype)
    return COOMatrix(rows, cols, vals, (nrows, ncols), sum_duplicates=False)


def banded_sparse(
    n: int, bandwidth: int, row_lengths: np.ndarray, *, seed: int = 0, dtype=np.float64
) -> COOMatrix:
    """Square matrix with entries confined to a diagonal band."""
    return random_sparse(
        n, n, row_lengths, seed=seed, dtype=dtype, bandwidth=bandwidth
    )


def off_diagonal_sparse(
    n: int,
    offsets: np.ndarray,
    *,
    extra_lengths: np.ndarray | None = None,
    extra_bandwidth: int | None = None,
    seed: int = 0,
    dtype=np.float64,
) -> COOMatrix:
    """Matrix of contiguous off-diagonals plus optional random fill.

    Models the HMEp structure ("contiguous off-diagonals of length
    15,000"): entry ``(i, i + d)`` exists for every offset ``d`` where
    it stays in range.  ``extra_lengths`` adds per-row random entries
    (within ``extra_bandwidth`` of the diagonal when given).
    """
    n = check_positive_int(n, "n")
    offsets = np.asarray(offsets, dtype=np.int64)
    rng = np.random.default_rng(seed)
    rows_parts = []
    cols_parts = []
    for d in offsets:
        if abs(int(d)) >= n:
            raise ValueError(f"offset {d} out of range for dimension {n}")
        i = np.arange(max(0, -d), min(n, n - d), dtype=INDEX_DTYPE)
        rows_parts.append(i)
        cols_parts.append(i + d)
    rows = np.concatenate(rows_parts) if rows_parts else np.empty(0, dtype=INDEX_DTYPE)
    cols = np.concatenate(cols_parts) if cols_parts else np.empty(0, dtype=INDEX_DTYPE)
    if extra_lengths is not None:
        extra_lengths = np.asarray(extra_lengths, dtype=INDEX_DTYPE)
        r2, c2 = sample_columns(
            extra_lengths, n, rng, bandwidth=extra_bandwidth
        )
        rows = np.concatenate([rows, r2])
        cols = np.concatenate([cols, c2])
    vals = _values(rng, rows.shape[0], dtype)
    # duplicate (diagonal ∩ random) entries are summed — harmless here
    return COOMatrix(rows, cols, vals, (n, n), sum_duplicates=True)


def block_sparse(
    nblock_rows: int,
    nblock_cols: int,
    block_size: int,
    blocks_per_row: np.ndarray,
    *,
    seed: int = 0,
    dtype=np.float64,
    block_bandwidth: int | None = None,
) -> COOMatrix:
    """Matrix of dense ``block_size x block_size`` sub-blocks (DLR2 structure).

    ``blocks_per_row[b]`` dense blocks are placed in block-row ``b``;
    each expands to ``block_size`` fully-populated scalar rows.
    """
    block_size = check_positive_int(block_size, "block_size")
    blocks = np.asarray(blocks_per_row, dtype=INDEX_DTYPE)
    if blocks.shape != (nblock_rows,):
        raise ValueError(f"blocks_per_row must have shape ({nblock_rows},)")
    rng = np.random.default_rng(seed)
    brow, bcol = sample_columns(
        blocks, nblock_cols, rng, bandwidth=block_bandwidth
    )
    nnz_blocks = brow.shape[0]
    # expand every block into a dense block_size x block_size patch
    local = np.arange(block_size, dtype=INDEX_DTYPE)
    dr = np.repeat(local, block_size)  # row offset within block
    dc = np.tile(local, block_size)  # col offset within block
    rows = (brow[:, None] * block_size + dr).ravel()
    cols = (bcol[:, None] * block_size + dc).ravel()
    vals = _values(rng, nnz_blocks * block_size * block_size, dtype)
    shape = (nblock_rows * block_size, nblock_cols * block_size)
    return COOMatrix(rows, cols, vals, shape, sum_duplicates=False)


def poisson2d(nx: int, ny: int | None = None, *, dtype=np.float64) -> COOMatrix:
    """5-point finite-difference Laplacian on an ``nx x ny`` grid.

    The classic constant-row-length matrix: ELLPACK and pJDS store it
    with (almost) no overhead — a useful boundary case for tests.
    """
    nx = check_positive_int(nx, "nx")
    ny = check_positive_int(ny if ny is not None else nx, "ny")
    n = nx * ny
    idx = np.arange(n, dtype=INDEX_DTYPE)
    ix = idx % nx
    iy = idx // nx
    rows = [idx]
    cols = [idx]
    vals = [np.full(n, 4.0)]
    for cond, off in (
        (ix > 0, -1),
        (ix < nx - 1, 1),
        (iy > 0, -nx),
        (iy < ny - 1, nx),
    ):
        sel = idx[cond]
        rows.append(sel)
        cols.append(sel + off)
        vals.append(np.full(sel.shape[0], -1.0))
    return COOMatrix(
        np.concatenate(rows),
        np.concatenate(cols),
        np.concatenate(vals).astype(dtype),
        (n, n),
        sum_duplicates=False,
    )


def from_networkx(graph, *, weight: str | None = None, dtype=np.float64) -> COOMatrix:
    """Adjacency matrix of a networkx graph (irregular-degree workloads)."""
    import networkx as nx

    nodes = list(graph.nodes())
    index = {v: i for i, v in enumerate(nodes)}
    n = len(nodes)
    rows, cols, vals = [], [], []
    for u, v, data in graph.edges(data=True):
        w = float(data.get(weight, 1.0)) if weight else 1.0
        rows.append(index[u])
        cols.append(index[v])
        vals.append(w)
        if not isinstance(graph, nx.DiGraph):
            rows.append(index[v])
            cols.append(index[u])
            vals.append(w)
    return COOMatrix(
        np.asarray(rows, dtype=INDEX_DTYPE) if rows else np.empty(0, INDEX_DTYPE),
        np.asarray(cols, dtype=INDEX_DTYPE) if cols else np.empty(0, INDEX_DTYPE),
        np.asarray(vals, dtype=dtype) if vals else np.empty(0, dtype),
        (max(n, 1), max(n, 1)),
        sum_duplicates=True,
    )
