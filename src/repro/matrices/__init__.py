"""Matrix corpus: synthetic generators, the paper suite, analysis, I/O."""

from repro.matrices.cache import cached_generate, default_cache_dir, load_coo, save_coo
from repro.matrices.analysis import (
    RowLengthHistogram,
    StructureStats,
    row_length_histogram,
    structure_stats,
)
from repro.matrices.generators import (
    banded_sparse,
    block_sparse,
    from_networkx,
    off_diagonal_sparse,
    poisson2d,
    random_sparse,
    sample_columns,
)
from repro.matrices.mmio import read_matrix_market, write_matrix_market
from repro.matrices.reorder import matrix_bandwidth, permute_symmetric, rcm_permutation
from repro.matrices.suite import (
    SUITE,
    SUITE_KEYS,
    MatrixSpec,
    generate,
    paper_statistics,
)

__all__ = [
    "cached_generate",
    "default_cache_dir",
    "load_coo",
    "save_coo",
    "RowLengthHistogram",
    "StructureStats",
    "row_length_histogram",
    "structure_stats",
    "banded_sparse",
    "block_sparse",
    "from_networkx",
    "off_diagonal_sparse",
    "poisson2d",
    "random_sparse",
    "sample_columns",
    "read_matrix_market",
    "write_matrix_market",
    "matrix_bandwidth",
    "permute_symmetric",
    "rcm_permutation",
    "SUITE",
    "SUITE_KEYS",
    "MatrixSpec",
    "generate",
    "paper_statistics",
]
