"""On-disk caching of generated suite matrices.

The synthetic generators are deterministic but not free (the larger
suite matrices take seconds).  ``cached_generate`` memoises them as
``.npz`` triplet files keyed by (matrix, scale, seed, dtype), so
repeated benchmark runs skip regeneration.  The cache is content-safe:
a corrupt or truncated file is regenerated, never trusted.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.formats.coo import COOMatrix
from repro.matrices.suite import generate

__all__ = ["cached_generate", "default_cache_dir", "save_coo", "load_coo"]

_FORMAT_VERSION = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-pjds``."""
    import os

    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-pjds"


def save_coo(matrix: COOMatrix, path: Path | str) -> None:
    """Persist a COO matrix as a compressed ``.npz`` triplet file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        shape=np.asarray(matrix.shape, dtype=np.int64),
        rows=matrix.rows,
        cols=matrix.cols,
        values=matrix.values,
    )


def load_coo(path: Path | str) -> COOMatrix:
    """Load a matrix written by :func:`save_coo`.

    Raises ``ValueError`` for unreadable or version-mismatched files.
    """
    try:
        with np.load(path) as data:
            if int(data["version"]) != _FORMAT_VERSION:
                raise ValueError(f"unsupported cache version in {path}")
            shape = tuple(int(s) for s in data["shape"])
            return COOMatrix(
                data["rows"], data["cols"], data["values"], shape,
                sum_duplicates=False,
            )
    except (OSError, KeyError, ValueError) as exc:
        raise ValueError(f"unreadable matrix cache file {path}: {exc}") from exc


def cached_generate(
    key: str,
    *,
    scale: int = 64,
    seed: int = 0,
    dtype=np.float64,
    cache_dir: Path | str | None = None,
) -> COOMatrix:
    """:func:`repro.matrices.generate` with a transparent disk cache."""
    base = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    dt = np.dtype(dtype)
    path = base / f"{key}_s{scale}_r{seed}_{dt.name}.npz"
    if path.exists():
        try:
            return load_coo(path)
        except ValueError:
            path.unlink(missing_ok=True)  # corrupt: regenerate below
    matrix = generate(key, scale=scale, seed=seed, dtype=dtype)
    save_coo(matrix, path)
    return matrix
