"""On-disk caching of generated suite matrices and tuner decisions.

The synthetic generators are deterministic but not free (the larger
suite matrices take seconds).  ``cached_generate`` memoises them as
``.npz`` triplet files keyed by (matrix, scale, seed, dtype), so
repeated benchmark runs skip regeneration.  The cache is content-safe:
a corrupt or truncated file is regenerated, never trusted.

The same directory also holds the :mod:`repro.engine` autotuner's
decision store (``tuner_cache.json``): a flat JSON map from matrix
fingerprints (shape/nnz/row-length-histogram hashes) to the winning
kernel-variant name, so re-binding a structurally identical matrix
skips the timing phase entirely.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

import numpy as np

from repro.formats.coo import COOMatrix
from repro.matrices.suite import generate

__all__ = [
    "cached_generate",
    "default_cache_dir",
    "save_coo",
    "load_coo",
    "TunerCache",
]

_FORMAT_VERSION = 1
_TUNER_CACHE_VERSION = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-pjds``."""
    import os

    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-pjds"


def save_coo(matrix: COOMatrix, path: Path | str) -> None:
    """Persist a COO matrix as a compressed ``.npz`` triplet file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        shape=np.asarray(matrix.shape, dtype=np.int64),
        rows=matrix.rows,
        cols=matrix.cols,
        values=matrix.values,
    )


def load_coo(path: Path | str) -> COOMatrix:
    """Load a matrix written by :func:`save_coo`.

    Raises ``ValueError`` for unreadable or version-mismatched files.
    """
    try:
        with np.load(path) as data:
            if int(data["version"]) != _FORMAT_VERSION:
                raise ValueError(f"unsupported cache version in {path}")
            shape = tuple(int(s) for s in data["shape"])
            return COOMatrix(
                data["rows"], data["cols"], data["values"], shape,
                sum_duplicates=False,
            )
    except (OSError, KeyError, ValueError) as exc:
        raise ValueError(f"unreadable matrix cache file {path}: {exc}") from exc


def cached_generate(
    key: str,
    *,
    scale: int = 64,
    seed: int = 0,
    dtype=np.float64,
    cache_dir: Path | str | None = None,
) -> COOMatrix:
    """:func:`repro.matrices.generate` with a transparent disk cache."""
    base = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    dt = np.dtype(dtype)
    path = base / f"{key}_s{scale}_r{seed}_{dt.name}.npz"
    if path.exists():
        try:
            return load_coo(path)
        except ValueError:
            path.unlink(missing_ok=True)  # corrupt: regenerate below
    matrix = generate(key, scale=scale, seed=seed, dtype=dtype)
    save_coo(matrix, path)
    return matrix


class TunerCache:
    """Fingerprint-keyed store of autotuner decisions.

    Entries map a matrix fingerprint (see
    :func:`repro.engine.tuner.fingerprint`) to a decision record::

        {"variant": "csr_reduceat", "timings": {...}, "format": "CRS"}

    The store is an in-memory dict optionally mirrored to
    ``<cache_dir>/tuner_cache.json``.  Disk I/O is best-effort: a
    corrupt or unwritable file silently degrades to memory-only
    operation (tuning again is always safe, just slower).

    All public methods are thread-safe: concurrent ``bind()`` calls
    from a worker pool (see :mod:`repro.serve`) race on the lazy load
    and on ``put`` otherwise, losing updates or double-reading the
    mirror file.
    """

    def __init__(self, path: Path | str | None = None, *, persist: bool = True):
        if path is None:
            path = default_cache_dir() / "tuner_cache.json"
        self._path = Path(path)
        self._persist = persist
        self._entries: dict[str, dict] = {}
        self._loaded = False
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    def _load(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        if not self._persist:
            return
        try:
            with open(self._path, encoding="utf-8") as fh:
                blob = json.load(fh)
            if blob.get("version") == _TUNER_CACHE_VERSION and isinstance(
                blob.get("entries"), dict
            ):
                self._entries.update(blob["entries"])
        except (OSError, ValueError):
            pass  # absent or corrupt: start empty

    def _flush(self) -> None:
        if not self._persist:
            return
        try:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self._path.with_suffix(".json.tmp")
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(
                    {"version": _TUNER_CACHE_VERSION, "entries": self._entries},
                    fh,
                    indent=0,
                    sort_keys=True,
                )
            tmp.replace(self._path)
        except OSError:
            pass  # read-only cache dir: memory-only operation

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> dict | None:
        """Return the cached decision record or None."""
        with self._lock:
            self._load()
            return self._entries.get(fingerprint)

    def put(self, fingerprint: str, record: dict) -> None:
        """Store a decision record and mirror it to disk."""
        with self._lock:
            self._load()
            self._entries[fingerprint] = dict(record)
            self._flush()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._loaded = True
            if self._persist:
                try:
                    self._path.unlink()
                except OSError:
                    pass

    def __len__(self) -> int:
        with self._lock:
            self._load()
            return len(self._entries)
