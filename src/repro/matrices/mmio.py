"""Matrix Market (.mtx) I/O for the COO interchange format.

Supports the ``matrix coordinate`` container with ``real``, ``integer``
and ``pattern`` fields and ``general``, ``symmetric`` and
``skew-symmetric`` symmetries — enough to load the usual sparse-matrix
collections a downstream user would point this library at.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.formats.base import INDEX_DTYPE
from repro.formats.coo import COOMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]

_FIELDS = {"real", "integer", "pattern"}
_SYMMETRIES = {"general", "symmetric", "skew-symmetric"}


def read_matrix_market(source) -> COOMatrix:
    """Read a Matrix Market coordinate file into a :class:`COOMatrix`.

    ``source`` may be a path or an open text file object.
    """
    if hasattr(source, "read"):
        return _read(source)
    with open(source, "r", encoding="utf-8") as fh:
        return _read(fh)


def _read(fh) -> COOMatrix:
    header = fh.readline().strip().split()
    if len(header) < 5 or header[0] != "%%MatrixMarket":
        raise ValueError(f"not a MatrixMarket file (header {' '.join(header)!r})")
    _, obj, fmt, field, symmetry = (h.lower() for h in header[:5])
    if obj != "matrix" or fmt != "coordinate":
        raise ValueError(f"only 'matrix coordinate' is supported, got {obj} {fmt}")
    if field not in _FIELDS:
        raise ValueError(f"unsupported field {field!r}; supported: {sorted(_FIELDS)}")
    if symmetry not in _SYMMETRIES:
        raise ValueError(
            f"unsupported symmetry {symmetry!r}; supported: {sorted(_SYMMETRIES)}"
        )

    line = fh.readline()
    while line and line.lstrip().startswith("%"):
        line = fh.readline()
    if not line:
        raise ValueError("missing size line")
    sizes = line.split()
    if len(sizes) != 3:
        raise ValueError(f"malformed size line: {line!r}")
    nrows, ncols, nnz = (int(s) for s in sizes)

    body = np.loadtxt(fh, ndmin=2) if nnz else np.empty((0, 3))
    if body.shape[0] != nnz:
        raise ValueError(f"expected {nnz} entries, found {body.shape[0]}")
    if field == "pattern":
        if nnz and body.shape[1] != 2:
            raise ValueError("pattern entries must have 2 columns")
        rows = body[:, 0].astype(INDEX_DTYPE) - 1
        cols = body[:, 1].astype(INDEX_DTYPE) - 1
        vals = np.ones(nnz, dtype=np.float64)
    else:
        if nnz and body.shape[1] != 3:
            raise ValueError(f"{field} entries must have 3 columns")
        rows = body[:, 0].astype(INDEX_DTYPE) - 1
        cols = body[:, 1].astype(INDEX_DTYPE) - 1
        vals = body[:, 2].astype(np.float64)

    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        rows = np.concatenate([rows, cols[off]])
        cols = np.concatenate([cols, body[:, 0].astype(INDEX_DTYPE)[off] - 1])
        vals = np.concatenate([vals, sign * vals[off]])

    return COOMatrix(rows, cols, vals, (nrows, ncols), sum_duplicates=True)


def write_matrix_market(
    matrix, target, *, comment: str | None = None, precision: int = 17
) -> None:
    """Write any format to a Matrix Market ``real general`` file.

    ``target`` may be a path or an open text file object.
    """
    coo = matrix.to_coo()
    if hasattr(target, "write"):
        _write(coo, target, comment, precision)
    else:
        Path(target).parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as fh:
            _write(coo, fh, comment, precision)


def _write(coo: COOMatrix, fh, comment: str | None, precision: int) -> None:
    fh.write("%%MatrixMarket matrix coordinate real general\n")
    if comment:
        for line in comment.splitlines():
            fh.write(f"% {line}\n")
    fh.write(f"{coo.nrows} {coo.ncols} {coo.nnz}\n")
    buf = io.StringIO()
    fmt = f"%d %d %.{precision}g"
    if coo.nnz:
        np.savetxt(
            buf,
            np.column_stack([coo.rows + 1, coo.cols + 1, coo.values]),
            fmt=fmt,
        )
    fh.write(buf.getvalue())
