"""Bandwidth-reducing reorderings (RCM) and symmetric permutations.

The distributed layer's halo volume and the GPU cache model's RHS
reuse both improve when the matrix bandwidth shrinks.  Reverse
Cuthill-McKee is the classic preprocessing step; production spMVM
pipelines (including the paper's reference [4] lineage) apply it before
partitioning.  Composing RCM with the pJDS length-sort is exactly the
locality-vs-padding interplay the SELL-C-sigma discussion is about.
"""

from __future__ import annotations

import numpy as np

from repro.formats.base import INDEX_DTYPE, SparseMatrixFormat
from repro.formats.coo import COOMatrix

__all__ = ["rcm_permutation", "permute_symmetric", "matrix_bandwidth"]


def matrix_bandwidth(matrix: SparseMatrixFormat) -> int:
    """Maximum ``|row - col|`` over the stored entries."""
    coo = matrix.to_coo()
    if coo.nnz == 0:
        return 0
    return int(np.abs(coo.rows - coo.cols).max())


def rcm_permutation(matrix: SparseMatrixFormat) -> np.ndarray:
    """Reverse Cuthill-McKee ordering of a square matrix's graph.

    Returns ``perm`` with ``perm[k]`` = original index of the vertex
    placed at position ``k`` (the same convention as
    :class:`~repro.core.sorting.Permutation`).  The sparsity pattern is
    symmetrised internally, as RCM requires.
    """
    import scipy.sparse as sp
    from scipy.sparse.csgraph import reverse_cuthill_mckee

    if matrix.nrows != matrix.ncols:
        raise ValueError("RCM requires a square matrix")
    coo = matrix.to_coo()
    pattern = sp.coo_matrix(
        (np.ones(coo.nnz), (coo.rows, coo.cols)), shape=coo.shape
    ).tocsr()
    perm = reverse_cuthill_mckee(pattern, symmetric_mode=False)
    return np.asarray(perm, dtype=INDEX_DTYPE)


def permute_symmetric(matrix: SparseMatrixFormat, perm: np.ndarray) -> COOMatrix:
    """Apply a symmetric permutation: ``B = A[perm, :][:, perm]``.

    Both the row and column spaces are renumbered, so spMVM results
    relate by ``B @ x[perm] == (A @ x)[perm]`` — the whole solver can
    run in the reordered numbering.
    """
    if matrix.nrows != matrix.ncols:
        raise ValueError("symmetric permutation requires a square matrix")
    perm = np.asarray(perm, dtype=INDEX_DTYPE)
    n = matrix.nrows
    if perm.shape != (n,) or not np.array_equal(np.sort(perm), np.arange(n)):
        raise ValueError("perm must be a permutation of all indices")
    inverse = np.empty(n, dtype=INDEX_DTYPE)
    inverse[perm] = np.arange(n, dtype=INDEX_DTYPE)
    coo = matrix.to_coo()
    return COOMatrix(
        inverse[coo.rows],
        inverse[coo.cols],
        coo.values,
        coo.shape,
        sum_duplicates=False,
    )
