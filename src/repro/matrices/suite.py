"""The paper's test-matrix suite, rebuilt synthetically (Sect. I-C).

The five production matrices are proprietary; each generator below
reproduces the *published* statistics the experiments depend on:

========  ==========  ===========  ======  ==================================
matrix    dimension   non-zeros    Nnzr    structure
========  ==========  ===========  ======  ==================================
HMEp      6,201,600   92,527,872   ~15     very sparse; contiguous
                                           off-diagonals of length 15,000
sAMG      3,405,035   24,027,759   ~7      adaptive multigrid; long-tail row
                                           lengths, max > 4x min
DLR1        278,502   40,025,628   ~144    unstructured CFD (adjoint);
                                           relative width ~2, 80 % of rows
                                           >= 0.8 x Nmax
DLR2        541,980  170,610,950   ~315    aerodynamic gradients; entirely
                                           dense 5x5 sub-blocks
UHBR      4,500,000   ~553,500,000 ~123    aeroelastic turbine fan (TRACE)
========  ==========  ===========  ======  ==================================

Generators take the *scaled* dimension; :func:`generate` handles the
scaling (default 1/64 of the paper size) so laptop runs stay fast while
every scale-invariant statistic (Nnzr, histogram shape, pJDS data
reduction, bandwidth structure) is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.formats.base import INDEX_DTYPE
from repro.formats.coo import COOMatrix
from repro.matrices.generators import block_sparse, random_sparse
from repro.utils.validation import check_positive_int

__all__ = ["MatrixSpec", "SUITE", "SUITE_KEYS", "generate", "paper_statistics"]


@dataclass(frozen=True)
class MatrixSpec:
    """Published statistics and the synthetic recipe of one suite matrix."""

    key: str
    title: str
    paper_dim: int
    paper_nnz: int
    paper_nnzr: float
    #: Table I "data reduction [%]" (pJDS vs ELLPACK); None if not listed.
    paper_reduction_pct: float | None
    structure: str
    _builder: Callable[[int, int, np.dtype], COOMatrix]

    def build(self, n: int, seed: int, dtype) -> COOMatrix:
        return self._builder(n, seed, np.dtype(dtype))


# ---------------------------------------------------------------------------
# per-matrix recipes
# ---------------------------------------------------------------------------

def _build_hmep(n: int, seed: int, dtype) -> COOMatrix:
    """Holstein-Hubbard-like: rows take a prefix of a global offset set.

    Every non-zero sits on one of 23 matrix-wide off-diagonals (the
    paper: "contiguous off-diagonals of length 15,000"), so lanes of a
    warp gather *consecutive* RHS elements — the coalesced access the
    format discussion says the pJDS permutation endangers.  Row ``i``
    uses the first ``k_i`` offsets, with ``k_i`` varying smoothly along
    the matrix (physical Hamiltonians have spatially correlated
    degrees) between 5 and 23 with mean ~15 (Fig. 3 bottom-left,
    Table I reduction ~36 %).
    """
    rng = np.random.default_rng(seed)
    stride_a = max(n // 414, 2)  # the 15,000-long off-diagonals, scaled
    stride_b = max(n // 50, 4)
    stride_c = max(n // 7, 6)
    offsets = [0, 1, -1, stride_a, -stride_a, 2, -2, stride_b, -stride_b,
               3, -3, stride_a + 1, -stride_a - 1, stride_c, -stride_c,
               4, -4, stride_b + 2, -stride_b - 2, 2 * stride_a,
               -2 * stride_a, 5, -5]
    # k is constant on plateaus of a few hundred rows (quantum-number
    # blocks of the Hamiltonian): the descending sort then moves whole
    # plateaus, so warp-level RHS coalescing survives the permutation —
    # the paper observes only a mild penalty for HMEp.
    nseg = -(-n // 192)  # enough segments even if every draw is minimal
    seg_len = rng.integers(192, 577, size=nseg)
    s = np.arange(nseg)
    seg_k = np.clip(
        np.rint(
            14.0
            + 7.0 * np.sin(2.0 * np.pi * s / 32.0)
            + rng.normal(0.0, 1.0, size=nseg)
        ),
        5,
        len(offsets),
    ).astype(INDEX_DTYPE)
    k = np.repeat(seg_k, seg_len)[:n]

    # entry (i, i + offsets[m]) for m < k_i, kept while in range
    i = np.arange(n, dtype=INDEX_DTYPE)
    offs = np.asarray(offsets, dtype=np.int64)
    rows = np.repeat(i, k)
    flat_m = np.arange(rows.shape[0], dtype=np.int64)
    starts = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(k, out=starts[1:])
    m = flat_m - starts[rows]
    cols = rows + offs[m]
    ok = (cols >= 0) & (cols < n)
    rows, cols = rows[ok], cols[ok]
    vals = rng.standard_normal(rows.shape[0])
    vals[vals == 0.0] = 1.0
    return COOMatrix(
        rows, cols, vals.astype(dtype), (n, n), sum_duplicates=False
    )


def _build_samg(n: int, seed: int, dtype) -> COOMatrix:
    """Algebraic-multigrid-like: short rows dominate, long tail to ~4.4x.

    Minimum length 5, geometric tail to 22 (max/min > 4, Fig. 3
    bottom-right); mean ~7.1 -> pJDS reduction ~68 % (Table I).
    """
    rng = np.random.default_rng(seed)
    # Vertex degrees on a discretised geometry form a spatially
    # correlated field: map a box-smoothed noise field through the
    # geometric quantile function, then add +-1 jitter.  Warps then see
    # a spread of ~2 around the local mean (ELLPACK-R streams the
    # difference — the pJDS performance edge), while the global sort
    # mostly reorders whole regions, so RHS locality survives and the
    # 68 % *storage* reduction vs plain ELLPACK's global width remains.
    # Multigrid orderings group vertices by coarsening level, so the
    # degree trend is *mostly monotone* along the index: score = linear
    # ramp + smooth perturbation.  The descending pJDS sort is then a
    # near-identity permutation (locality survives), while the +-1
    # jitter below still leaves warp-level imbalance for ELLPACK-R.
    window = min(max(n // 100, 64), max(n // 2, 1))
    noise = rng.standard_normal(n + window)
    cum = np.cumsum(noise)
    field = cum[window:] - cum[:-window]  # box-filtered noise
    field = field / max(float(np.abs(field).max()), 1e-12)
    score = np.arange(n) / n + 0.08 * field
    rank = np.empty(n, dtype=np.float64)
    rank[np.argsort(score, kind="stable")] = (np.arange(n) + 0.5) / n
    # geometric(0.327) quantiles (long rows first), clipped to the max
    tail = np.floor(np.log1p(-(1.0 - rank)) / np.log(1.0 - 0.327)).astype(
        INDEX_DTYPE
    )
    jitter = rng.choice(np.array([-2, -1, 0, 1, 2]), size=n, p=[0.15, 0.2, 0.3, 0.2, 0.15])
    lengths = np.clip(5 + np.minimum(tail, 17) + jitter, 5, 22).astype(INDEX_DTYPE)
    return random_sparse(
        n, n, lengths, seed=seed + 1, dtype=dtype, bandwidth=max(n // 30, 30)
    )


def _build_dlr1(n: int, seed: int, dtype) -> COOMatrix:
    """Adjoint-CFD-like: 6x6 dense blocks (6 unknowns per grid point).

    Blocks per point-row: 80 % in [24, 30], the rest in [15, 24)
    (Fig. 3 top-left: narrow spread clustered near Nmax = 180, 80 % of
    rows >= 0.8 x Nmax) -> mean row length ~153, reduction ~17 %.  The
    6-wide dense blocks give the RHS gather the spatial locality an
    unstructured-grid CFD matrix actually has.
    """
    rng = np.random.default_rng(seed)
    npoints = max(n // 6, 2)
    hi = rng.random(npoints) < 0.80
    blocks = np.where(
        hi,
        rng.integers(24, 31, size=npoints),
        rng.integers(15, 24, size=npoints),
    ).astype(INDEX_DTYPE)
    blocks = np.minimum(blocks, npoints)
    return block_sparse(
        npoints,
        npoints,
        6,
        blocks,
        seed=seed + 1,
        dtype=dtype,
        block_bandwidth=max(npoints // 2, 64),  # adjoint coupling scatters wide
    )


def _build_dlr2(n: int, seed: int, dtype) -> COOMatrix:
    """Aerodynamic-gradients-like: entirely dense 5x5 sub-blocks.

    Block counts per block-row: 90 % ~ N(60, 15) clipped to [8, 100],
    10 % uniform in [100, 121] -> scalar row lengths 40..605, mean ~325
    (Fig. 3 top-right) -> reduction ~46 %.
    """
    rng = np.random.default_rng(seed)
    nb = max(n // 5, 2)  # block rows
    base = np.clip(np.rint(rng.normal(60.0, 15.0, size=nb)), 8, 100)
    tail = rng.integers(100, 122, size=nb)
    blocks = np.where(rng.random(nb) < 0.10, tail, base).astype(INDEX_DTYPE)
    blocks = np.minimum(blocks, nb)  # cannot exceed the block-column count
    return block_sparse(
        nb,
        nb,
        5,
        blocks,
        seed=seed + 1,
        dtype=dtype,
        block_bandwidth=max(nb // 4, 130),
    )


def _build_uhbr(n: int, seed: int, dtype) -> COOMatrix:
    """Linearised-Navier-Stokes-like: 6x6 blocks, DLR1-shaped spread.

    Nnzr ~123 at 16x DLR1's non-zeros (the paper's large strong-scaling
    workload); blocks per point-row 70 % in [20, 27), rest in [12, 20).
    """
    rng = np.random.default_rng(seed)
    npoints = max(n // 6, 2)
    hi = rng.random(npoints) < 0.70
    blocks = np.where(
        hi,
        rng.integers(20, 27, size=npoints),
        rng.integers(12, 20, size=npoints),
    ).astype(INDEX_DTYPE)
    blocks = np.minimum(blocks, npoints)
    return block_sparse(
        npoints,
        npoints,
        6,
        blocks,
        seed=seed + 1,
        dtype=dtype,
        block_bandwidth=max(npoints // 14, 64),
    )


SUITE: dict[str, MatrixSpec] = {
    "HMEp": MatrixSpec(
        "HMEp",
        "Holstein-Hubbard model, 6 sites / 6 electrons / 15 phonons",
        6_201_600,
        92_527_872,
        14.9,
        36.0,
        "very sparse; contiguous off-diagonals of length 15,000",
        _build_hmep,
    ),
    "sAMG": MatrixSpec(
        "sAMG",
        "adaptive multigrid, Poisson problem on a car geometry",
        3_405_035,
        24_027_759,
        7.06,
        68.4,
        "long-tail row lengths; max > 4x min; short rows dominate",
        _build_samg,
    ),
    "DLR1": MatrixSpec(
        "DLR1",
        "TAU adjoint problem, turbulent transonic flow over a wing",
        278_502,
        40_025_628,
        143.7,
        17.5,
        "relative width ~2; 80% of rows >= 0.8 x Nmax",
        _build_dlr1,
    ),
    "DLR2": MatrixSpec(
        "DLR2",
        "TAU aerodynamic gradients, transonic inviscid flow",
        541_980,
        170_610_950,
        314.8,
        48.0,
        "entirely dense 5x5 sub-blocks",
        _build_dlr2,
    ),
    "UHBR": MatrixSpec(
        "UHBR",
        "TRACE aeroelastic stability, ultra-high bypass ratio fan",
        4_500_000,
        553_500_000,
        123.0,
        None,
        "large; Nnzr similar to DLR1 at 16x the non-zeros",
        _build_uhbr,
    ),
}

SUITE_KEYS: tuple[str, ...] = tuple(SUITE)


def generate(
    key: str, *, scale: int = 64, seed: int = 0, dtype=np.float64
) -> COOMatrix:
    """Build a suite matrix at ``1/scale`` of the paper dimension.

    ``scale=64`` (default) keeps the largest matrix below ~10 M
    non-zeros.  Statistics relevant to the experiments are
    scale-invariant; the structural strides (off-diagonal distances,
    bandwidths) shrink proportionally.
    """
    try:
        spec = SUITE[key]
    except KeyError:
        raise ValueError(f"unknown suite matrix {key!r}; available: {SUITE_KEYS}") from None
    scale = check_positive_int(scale, "scale")
    n = max(spec.paper_dim // scale, 64)
    if key == "DLR2":
        n -= n % 5  # keep the 5x5 block structure exact
    elif key in ("DLR1", "UHBR"):
        n -= n % 6  # keep the 6x6 block structure exact
    return spec.build(n, seed, dtype)


def paper_statistics() -> dict[str, dict[str, float]]:
    """Published per-matrix statistics, keyed like :data:`SUITE`."""
    return {
        k: {
            "dim": s.paper_dim,
            "nnz": s.paper_nnz,
            "nnzr": s.paper_nnzr,
            "reduction_pct": s.paper_reduction_pct,
        }
        for k, s in SUITE.items()
    }
