"""Interconnect model for the event simulator (the Dirac cluster's IB).

A message of ``b`` bytes between two nodes costs

    T(b) = latency + b / bandwidth

the classic alpha-beta (Hockney) model.  The Dirac cluster's QDR
InfiniBand sustains roughly 3 GB/s per node with ~2 microseconds
point-to-point latency; both are configurable.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkModel", "DIRAC_IB"]


@dataclass(frozen=True)
class NetworkModel:
    """alpha-beta interconnect: per-message latency + inverse bandwidth."""

    name: str = "QDR-IB"
    latency_s: float = 2e-6
    bandwidth_gbs: float = 3.0

    def __post_init__(self):
        if self.latency_s < 0:
            raise ValueError("latency must be >= 0")
        if self.bandwidth_gbs <= 0:
            raise ValueError("bandwidth must be > 0")

    @property
    def bytes_per_s(self) -> float:
        return self.bandwidth_gbs * 1e9

    def message_seconds(self, nbytes: int) -> float:
        """Point-to-point transfer time of one message."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.latency_s + nbytes / self.bytes_per_s

    def exchange_seconds(self, message_bytes: dict[int, int]) -> float:
        """Serialised cost of one rank's sends (or receives).

        The NIC injects messages one after another; receives from
        distinct sources overlap with sends on full-duplex links, so a
        rank's communication phase is bounded by the larger of the two
        directions — callers pass each direction separately and take
        the max.
        """
        return sum(self.message_seconds(b) for b in message_bytes.values())


#: the cluster the paper's Fig. 5 was measured on
DIRAC_IB = NetworkModel()
