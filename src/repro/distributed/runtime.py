"""Functional execution of the distributed spMVM with real threads.

This is the *correctness* half of the distributed layer: every rank is
a Python thread with an inbox queue; halo data really moves between
threads as buffers, following the same :class:`~repro.distributed.plan.CommPlan`
the timing simulator consumes.  A bug in the plan (wrong gather list,
wrong halo layout) breaks these results, not just a performance plot.

The exchange mirrors the mpi4py buffer idiom: senders gather owned
elements into contiguous buffers (the "local gather" of Fig. 4) and
post them tagged with their rank; receivers assemble their halo buffer
in plan order, then run ``y_local = A_local @ x_local + A_nonlocal @ halo``.

When :mod:`repro.obs` is enabled, every rank emits a span chain
(``rank.gather`` → ``rank.send`` → ``rank.waitall`` → ``rank.spmv``)
parented under a single ``distributed_spmv`` root span — the real-run
counterpart of the simulated Fig. 4 timelines — plus
``halo_bytes_sent{rank=...}`` counters.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.distributed.plan import CommPlan, RankPlan
from repro.utils.validation import check_dense_vector

__all__ = ["distributed_spmv", "RankResult", "rank_spmv", "DistributedTimeout"]

_DEFAULT_TIMEOUT_S = 60.0


class DistributedTimeout(RuntimeError):
    """A rank (or several) did not finish within the timeout.

    Carries structured fields for programmatic handling: ``stuck_ranks``
    (which ranks were still running), ``timeout`` (the configured bound)
    and ``where`` (the phase that timed out — ``"waitall (...)"`` from a
    rank still expecting halo messages, ``"join"`` from the driver, or
    ``"result gather"`` from the multiprocessing backend).
    """

    def __init__(self, stuck_ranks: list[int], timeout: float, where: str):
        self.stuck_ranks = list(stuck_ranks)
        self.timeout = timeout
        self.where = where
        super().__init__(
            f"distributed spMVM timed out after {timeout:g}s during {where}; "
            f"stuck ranks: {', '.join(map(str, stuck_ranks)) or '<unknown>'}"
        )


@dataclass
class RankResult:
    """Outcome of one rank's share of the multiplication."""

    rank: int
    y_local: np.ndarray
    sent_messages: int
    received_messages: int


def rank_spmv(
    plan: RankPlan,
    x_local: np.ndarray,
    halo: np.ndarray,
) -> np.ndarray:
    """Compute one rank's result rows from local + halo data."""
    if plan.local_matrix is None or plan.nonlocal_matrix is None:
        raise ValueError(
            "plan was built with with_matrices=False; rebuild with matrices"
        )
    y = plan.local_matrix.spmv(x_local)
    if plan.nnz_nonlocal:
        y = y + plan.nonlocal_matrix.spmv(
            check_dense_vector(
                halo,
                plan.nonlocal_matrix.ncols,
                dtype=plan.nonlocal_matrix.dtype,
                name="halo",
            )
        )
    return y


def _rank_worker(
    plan: RankPlan,
    x_local: np.ndarray,
    inbox: "queue.Queue[tuple[int, np.ndarray]]",
    outboxes: dict[int, "queue.Queue[tuple[int, np.ndarray]]"],
    results: list,
    errors: list,
    timeout: float,
    ctx: "obs.SpanContext | None" = None,
) -> None:
    try:
        with obs.attach_context(ctx or obs.SpanContext(None)):
            _rank_body(plan, x_local, inbox, outboxes, results, timeout)
    except Exception as exc:
        errors.append((plan.rank, exc))


def _rank_body(plan, x_local, inbox, outboxes, results, timeout) -> None:
    r = plan.rank
    # local gather + sends (Isend analogue: queues never block)
    with obs.span("rank.gather", rank=r):
        buffers = {
            dst: x_local[local_idx].copy()
            for dst, local_idx in plan.send_cols.items()
        }
    sent = 0
    with obs.span("rank.send", rank=r):
        for dst, buf in buffers.items():
            outboxes[dst].put((r, buf))
            sent += 1
            obs.inc("halo_bytes_sent", buf.nbytes, rank=str(r), dst=str(dst))
            obs.inc("halo_messages_sent", 1, rank=str(r))

    # receive until the halo buffer is complete (Irecv + Waitall)
    pending = set(plan.recv_cols)
    segments: dict[int, np.ndarray] = {}
    with obs.span("rank.waitall", rank=r):
        while pending:
            try:
                src, buf = inbox.get(timeout=timeout)
            except queue.Empty:
                obs.inc("distributed_timeouts_total", 1, rank=str(r))
                raise DistributedTimeout(
                    [r], timeout, f"waitall (still expecting {sorted(pending)})"
                ) from None
            if src not in pending:
                raise RuntimeError(f"rank {r}: unexpected message from {src}")
            if buf.shape[0] != plan.recv_cols[src].shape[0]:
                raise RuntimeError(
                    f"rank {r}: bad message size from {src}: "
                    f"{buf.shape[0]} != {plan.recv_cols[src].shape[0]}"
                )
            segments[src] = buf
            pending.discard(src)

    # assemble the halo in plan order (ascending source rank)
    if segments:
        halo = np.concatenate([segments[s] for s in sorted(segments)])
    else:
        width = plan.nonlocal_matrix.ncols if plan.nonlocal_matrix else 1
        halo = np.zeros(width, dtype=x_local.dtype)
    with obs.span("rank.spmv", rank=r):
        y = rank_spmv(plan, x_local, halo)
    results[r] = RankResult(r, y, sent, len(segments))


def distributed_spmv(
    comm_plan: CommPlan,
    x: np.ndarray,
    *,
    backend: str = "threads",
    timeout: float = _DEFAULT_TIMEOUT_S,
) -> np.ndarray:
    """Execute ``y = A @ x`` across one worker per rank.

    ``x`` is the global RHS; the function scatters it according to the
    partition, runs the full exchange + compute on the workers and
    gathers the global result.

    ``backend="threads"`` (default) keeps everything in-process;
    ``backend="processes"`` forks one OS process per rank, so every
    halo byte really crosses an address-space boundary — the closest
    a single host gets to the paper's distributed-memory setting.

    ``timeout`` bounds both the per-rank halo wait and the final join;
    on expiry a :class:`DistributedTimeout` names the stuck ranks (and
    the ``distributed_timeouts_total`` counter is incremented when
    :mod:`repro.obs` is enabled).  Workers run as daemon threads, so a
    stuck exchange cannot hang interpreter shutdown.
    """
    if backend == "processes":
        return _distributed_spmv_processes(comm_plan, x, timeout=timeout)
    if backend != "threads":
        raise ValueError(
            f"backend must be 'threads' or 'processes', got {backend!r}"
        )
    if timeout <= 0:
        raise ValueError(f"timeout must be > 0, got {timeout}")
    part = comm_plan.partition
    # build_plan enforces square matrices, so the global RHS length
    # (ncols) and the row-partitioned output length (nrows) coincide;
    # keep the dimensions distinct anyway so the code documents which
    # is which.
    nrows = part.nrows
    assert nrows == comm_plan.ncols, "distributed plans require square matrices"
    x = np.ascontiguousarray(x)
    if x.shape != (comm_plan.ncols,):
        raise ValueError(f"x must have shape ({comm_plan.ncols},), got {x.shape}")

    with obs.span(
        "distributed_spmv", nparts=part.nparts, backend="threads"
    ) as root:
        ctx = obs.capture_context()
        inboxes = {r.rank: queue.Queue() for r in comm_plan.ranks}
        results: list = [None] * part.nparts
        errors: list = []
        threads = []
        for plan in comm_plan.ranks:
            lo, hi = plan.row_range
            t = threading.Thread(
                target=_rank_worker,
                args=(
                    plan,
                    x[lo:hi].copy(),
                    inboxes[plan.rank],
                    inboxes,
                    results,
                    errors,
                    timeout,
                    ctx,
                ),
                name=f"rank-{plan.rank}",
                daemon=True,
            )
            threads.append(t)
            t.start()
        for t in threads:
            t.join(timeout=timeout)
        stuck = [
            plan.rank
            for plan, t in zip(comm_plan.ranks, threads)
            if t.is_alive()
        ]
        if errors:
            rank, exc = errors[0]
            if isinstance(exc, DistributedTimeout):
                raise exc
            raise RuntimeError(f"rank {rank} failed: {exc}") from exc
        if stuck:
            obs.inc("distributed_timeouts_total", 1, rank="driver")
            raise DistributedTimeout(stuck, timeout, "join")
        if any(r is None for r in results):
            raise RuntimeError(
                "distributed spMVM deadlocked (missing rank results)"
            )

        # row-partitioned output: nrows entries, one block per rank
        y = np.empty(nrows, dtype=results[0].y_local.dtype)
        for res, plan in zip(results, comm_plan.ranks):
            lo, hi = plan.row_range
            y[lo:hi] = res.y_local
        root.set_attr("nrows", nrows)
    return y


def _process_worker(plan, x_local, inbox, outboxes, result_queue, timeout) -> None:
    """Per-rank body for the multiprocessing backend."""
    try:
        for dst, local_idx in plan.send_cols.items():
            outboxes[dst].put((plan.rank, x_local[local_idx].copy()))
        pending = set(plan.recv_cols)
        segments = {}
        while pending:
            try:
                src, buf = inbox.get(timeout=timeout)
            except queue.Empty:
                raise DistributedTimeout(
                    [plan.rank],
                    timeout,
                    f"waitall (still expecting {sorted(pending)})",
                ) from None
            if src not in pending:
                raise RuntimeError(f"rank {plan.rank}: unexpected sender {src}")
            segments[src] = buf
            pending.discard(src)
        if segments:
            halo = np.concatenate([segments[s] for s in sorted(segments)])
        else:
            width = plan.nonlocal_matrix.ncols if plan.nonlocal_matrix else 1
            halo = np.zeros(width, dtype=x_local.dtype)
        y = rank_spmv(plan, x_local, halo)
        result_queue.put((plan.rank, y, None))
    except Exception as exc:  # pragma: no cover - surfaced by the driver
        result_queue.put((plan.rank, None, repr(exc)))


def _distributed_spmv_processes(
    comm_plan: CommPlan, x: np.ndarray, *, timeout: float = _DEFAULT_TIMEOUT_S
) -> np.ndarray:
    """Fork one OS process per rank; halos travel through real pipes."""
    import multiprocessing as mp

    if timeout <= 0:
        raise ValueError(f"timeout must be > 0, got {timeout}")
    x = np.ascontiguousarray(x)
    if x.shape != (comm_plan.ncols,):
        raise ValueError(f"x must have shape ({comm_plan.ncols},), got {x.shape}")
    nrows = comm_plan.partition.nrows
    assert nrows == comm_plan.ncols, "distributed plans require square matrices"
    ctx = mp.get_context("fork")
    inboxes = {r.rank: ctx.Queue() for r in comm_plan.ranks}
    result_queue = ctx.Queue()
    procs = []
    for plan in comm_plan.ranks:
        lo, hi = plan.row_range
        p = ctx.Process(
            target=_process_worker,
            args=(
                plan,
                x[lo:hi].copy(),
                inboxes[plan.rank],
                inboxes,
                result_queue,
                timeout,
            ),
            name=f"rank-{plan.rank}",
            daemon=True,
        )
        procs.append(p)
        p.start()
    results: dict[int, np.ndarray] = {}
    error = None
    for _ in comm_plan.ranks:
        try:
            rank, y, err = result_queue.get(timeout=timeout)
        except queue.Empty:
            stuck = sorted(set(r.rank for r in comm_plan.ranks) - set(results))
            obs.inc("distributed_timeouts_total", 1, rank="driver")
            raise DistributedTimeout(stuck, timeout, "result gather") from None
        if err is not None:
            error = (rank, err)
        else:
            results[rank] = y
    for p in procs:
        p.join(timeout=timeout)
    if error is not None:
        raise RuntimeError(f"rank {error[0]} failed: {error[1]}")

    # row-partitioned output: nrows entries, one block per rank
    out = np.empty(nrows, dtype=next(iter(results.values())).dtype)
    for plan in comm_plan.ranks:
        lo, hi = plan.row_range
        out[lo:hi] = results[plan.rank]
    return out
