"""Functional execution of the distributed spMVM with real threads.

This is the *correctness* half of the distributed layer: every rank is
a Python thread with an inbox queue; halo data really moves between
threads as buffers, following the same :class:`~repro.distributed.plan.CommPlan`
the timing simulator consumes.  A bug in the plan (wrong gather list,
wrong halo layout) breaks these results, not just a performance plot.

The exchange mirrors the mpi4py buffer idiom: senders gather owned
elements into contiguous buffers (the "local gather" of Fig. 4) and
post them tagged with their rank; receivers assemble their halo buffer
in plan order.  Two execution modes mirror Sect. III-A *schedules*
(the arithmetic — local product, then nonlocal add — is identical, so
both are bitwise-equal):

* ``mode="vector"`` — wait for the complete halo, then compute
  (bulk-synchronous, the default);
* ``mode="task"`` — compute the local part while halo messages are in
  flight, add the nonlocal part after ``waitall`` (the overlap split).

**Resilience** (see ``docs/resilience.md``): ``faults=`` threads a
:class:`~repro.faults.FaultInjector` through the workers — the driver
pulls one round of plain-data *directives* per rank (crash, message
drop/delay, kernel exception, slow worker), so thread and process
backends inject identically.  A halo wait that expires raises
:class:`HaloExchangeTimeout` naming the exact missing edges (rank,
neighbors, direction) instead of the whole step.  ``retry=`` enables
recovery: failed ranks are re-executed from their immutable row-block
inputs (``x`` is never mutated, and the halo equals ``x[halo_cols]``
bitwise), so recovered runs match fault-free runs bit for bit.

When :mod:`repro.obs` is enabled, every rank emits a span chain
(``rank.gather`` → ``rank.send`` → ``rank.waitall`` → ``rank.spmv``)
parented under a single ``distributed_spmv`` root span, plus
``halo_bytes_sent{rank=...}`` counters; recoveries add ``rank.recover``
spans and ``faults_retries_total`` / ``faults_recovered_total``.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.distributed.plan import CommPlan, RankPlan
from repro.faults.inject import FaultError, InjectedFault
from repro.faults.retry import RetryExhausted
from repro.utils.validation import check_dense_vector

__all__ = [
    "distributed_spmv",
    "RankResult",
    "rank_spmv",
    "DistributedTimeout",
    "HaloExchangeTimeout",
    "RUNTIME_MODES",
]

_DEFAULT_TIMEOUT_S = 60.0

RUNTIME_MODES = ("vector", "task")


class DistributedTimeout(RuntimeError):
    """A rank (or several) did not finish within the timeout.

    Carries structured fields for programmatic handling: ``stuck_ranks``
    (which ranks were still running), ``timeout`` (the configured bound)
    and ``where`` (the phase that timed out — ``"waitall (...)"`` from a
    rank still expecting halo messages, ``"join"`` from the driver, or
    ``"result gather"`` from the multiprocessing backend).
    """

    def __init__(self, stuck_ranks: list[int], timeout: float, where: str):
        self.stuck_ranks = list(stuck_ranks)
        self.timeout = timeout
        self.where = where
        super().__init__(
            f"distributed spMVM timed out after {timeout:g}s during {where}; "
            f"stuck ranks: {', '.join(map(str, stuck_ranks)) or '<unknown>'}"
        )


class HaloExchangeTimeout(DistributedTimeout):
    """One rank's halo wait expired — names the exact missing edges.

    Instead of indicting the whole step, this narrows the failure to
    (``rank``, ``neighbors``, ``direction``): rank ``rank`` was still
    ``direction``-ing halo traffic for the listed neighbor ranks when
    its wait expired.  Picklable, so the multiprocessing backend can
    ship it from a child rank to the driver intact.
    """

    def __init__(self, rank: int, neighbors: list[int], timeout: float,
                 direction: str = "recv"):
        self.rank = int(rank)
        self.neighbors = sorted(int(n) for n in neighbors)
        self.direction = direction
        super().__init__(
            [self.rank],
            timeout,
            f"waitall (rank {self.rank} still expecting halo from "
            f"{self.neighbors}, direction={direction})",
        )

    def __reduce__(self):
        return (type(self), (self.rank, self.neighbors, self.timeout, self.direction))


@dataclass
class RankResult:
    """Outcome of one rank's share of the multiplication."""

    rank: int
    y_local: np.ndarray
    sent_messages: int
    received_messages: int


def rank_spmv(
    plan: RankPlan,
    x_local: np.ndarray,
    halo: np.ndarray,
) -> np.ndarray:
    """Compute one rank's result rows from local + halo data."""
    if plan.local_matrix is None or plan.nonlocal_matrix is None:
        raise ValueError(
            "plan was built with with_matrices=False; rebuild with matrices"
        )
    y = plan.local_matrix.spmv(x_local)
    if plan.nnz_nonlocal:
        y = y + plan.nonlocal_matrix.spmv(
            check_dense_vector(
                halo,
                plan.nonlocal_matrix.ncols,
                dtype=plan.nonlocal_matrix.dtype,
                name="halo",
            )
        )
    return y


# ---------------------------------------------------------------------------
# fault directives (plain data produced by FaultInjector.rank_directives)
# ---------------------------------------------------------------------------

def _note_fault(kind: str, rank: int, site: str, **extra) -> None:
    """Mark the victim at the point of impact.

    The injector records a ``fault.injected`` span when a directive is
    *scheduled* (driver side); this marks where it actually *fired*
    (worker side): the enclosing rank span gets ``fault``/``fault_site``
    attrs and a zero-length ``fault.applied`` span lands in the trace,
    so ``repro obs trace`` shows the fault attached to the rank that
    suffered it — in both backends, since the process workers ship
    their spans home.
    """
    if not obs.enabled():
        return
    obs.annotate_current(fault=kind, fault_site=site)
    with obs.span("fault.applied", kind=kind, rank=rank, site=site, **extra):
        pass


def _directive_crash(directives, rank: int, site: str) -> None:
    for d in directives:
        if d["kind"] == "rank_crash":
            _note_fault("rank_crash", rank, site)
            raise InjectedFault("rank_crash", site, {"rank": rank})


def _directive_kernel(directives, rank: int, site: str) -> None:
    for d in directives:
        if d["kind"] == "kernel_exception":
            _note_fault("kernel_exception", rank, site)
            raise InjectedFault("kernel_exception", site, {"rank": rank})


def _directive_slow(directives, rank: int | None = None, site: str = "rank.start") -> None:
    for d in directives:
        if d["kind"] == "slow_worker" and d.get("delay_s"):
            if rank is not None:
                _note_fault("slow_worker", rank, site, delay_s=d["delay_s"])
            time.sleep(d["delay_s"])


def _message_faults(directives) -> tuple[set, dict]:
    """(dropped destinations, {dst: delay_s}); ``None`` dst = every edge."""
    drops = {d.get("dst") for d in directives if d["kind"] == "halo_drop"}
    delays = {
        d.get("dst"): d.get("delay_s", 0.0)
        for d in directives
        if d["kind"] == "halo_delay"
    }
    return drops, delays


# ---------------------------------------------------------------------------
# rank bodies (threads backend)
# ---------------------------------------------------------------------------

def _rank_worker(
    plan: RankPlan,
    x_local: np.ndarray,
    inbox: "queue.Queue[tuple[int, np.ndarray]]",
    outboxes: dict[int, "queue.Queue[tuple[int, np.ndarray]]"],
    results: list,
    errors: list,
    timeout: float,
    mode: str,
    directives: list,
    ctx: "obs.SpanContext | None" = None,
) -> None:
    try:
        with obs.attach_context(ctx or obs.SpanContext(None)):
            _rank_body(plan, x_local, inbox, outboxes, results, timeout, mode, directives)
    except Exception as exc:
        errors.append((plan.rank, exc))


def _rank_body(plan, x_local, inbox, outboxes, results, timeout, mode, directives) -> None:
    r = plan.rank
    directives = directives or ()
    _directive_crash(directives, r, "rank.start")
    _directive_slow(directives, r, "rank.start")
    drops, delays = _message_faults(directives)

    # local gather + sends (Isend analogue: queues never block)
    with obs.span("rank.gather", rank=r):
        buffers = {
            dst: x_local[local_idx].copy()
            for dst, local_idx in plan.send_cols.items()
        }
    sent = 0
    with obs.span("rank.send", rank=r):
        for dst, buf in buffers.items():
            if dst in drops or None in drops:
                obs.inc("halo_messages_dropped", 1, rank=str(r), dst=str(dst))
                _note_fault("halo_drop", r, "rank.send", dst=dst)
                continue
            delay = delays.get(dst, delays.get(None, 0.0))
            if delay:
                time.sleep(delay)
            outboxes[dst].put((r, buf))
            sent += 1
            obs.inc("halo_bytes_sent", buf.nbytes, rank=str(r), dst=str(dst))
            obs.inc("halo_messages_sent", 1, rank=str(r))

    # task mode: overlap the local kernel with the in-flight halo
    y_partial = None
    if mode == "task" and plan.local_matrix is not None:
        with obs.span("rank.local_spmv", rank=r):
            y_partial = plan.local_matrix.spmv(x_local)

    # receive until the halo buffer is complete (Irecv + Waitall)
    pending = set(plan.recv_cols)
    segments: dict[int, np.ndarray] = {}
    with obs.span("rank.waitall", rank=r):
        while pending:
            try:
                src, buf = inbox.get(timeout=timeout)
            except queue.Empty:
                obs.inc("distributed_timeouts_total", 1, rank=str(r))
                raise HaloExchangeTimeout(r, sorted(pending), timeout) from None
            if src not in pending:
                raise RuntimeError(f"rank {r}: unexpected message from {src}")
            if buf.shape[0] != plan.recv_cols[src].shape[0]:
                raise RuntimeError(
                    f"rank {r}: bad message size from {src}: "
                    f"{buf.shape[0]} != {plan.recv_cols[src].shape[0]}"
                )
            segments[src] = buf
            pending.discard(src)

    # assemble the halo in plan order (ascending source rank)
    if segments:
        halo = np.concatenate([segments[s] for s in sorted(segments)])
    else:
        width = plan.nonlocal_matrix.ncols if plan.nonlocal_matrix else 1
        halo = np.zeros(width, dtype=x_local.dtype)
    _directive_kernel(directives, r, "rank.spmv")
    with obs.span("rank.spmv", rank=r):
        if mode == "task" and y_partial is not None:
            y = y_partial
            if plan.nnz_nonlocal:
                y = y + plan.nonlocal_matrix.spmv(
                    check_dense_vector(
                        halo,
                        plan.nonlocal_matrix.ncols,
                        dtype=plan.nonlocal_matrix.dtype,
                        name="halo",
                    )
                )
        else:
            y = rank_spmv(plan, x_local, halo)
    results[r] = RankResult(r, y, sent, len(segments))


# ---------------------------------------------------------------------------
# recovery: re-execute failed ranks from immutable inputs
# ---------------------------------------------------------------------------

def _recompute_rank(plan: RankPlan, x: np.ndarray, faults) -> np.ndarray:
    """Serially re-execute one rank from its immutable inputs.

    ``x`` was never mutated, and in a fault-free run the halo buffer is
    exactly ``x[plan.halo_cols]`` (the per-source sorted column lists
    concatenate to the globally sorted ``halo_cols``), so the recomputed
    result is bitwise identical to what the rank would have produced.
    Remaining scheduled faults for this rank still fire (rank crash /
    kernel exception / slow worker; message faults are no-ops since no
    exchange happens here).
    """
    r = plan.rank
    directives = faults.rank_directives(r, site="rank.recover") if faults else ()
    _directive_crash(directives, r, "rank.recover")
    _directive_slow(directives, r, "rank.recover")
    lo, hi = plan.row_range
    if plan.halo_cols is not None and plan.halo_cols.size:
        halo = np.ascontiguousarray(x[plan.halo_cols])
    else:
        width = plan.nonlocal_matrix.ncols if plan.nonlocal_matrix else 1
        halo = np.zeros(width, dtype=x.dtype)
    _directive_kernel(directives, r, "rank.recover")
    return rank_spmv(plan, x[lo:hi], halo)


def _recover_failed_ranks(
    comm_plan: CommPlan,
    x: np.ndarray,
    failures: dict,
    faults,
    retry,
) -> dict:
    """Retry every failed rank under ``retry``; returns {rank: y}.

    Raises :class:`~repro.faults.RetryExhausted` (carrying the full
    fault history) once a rank's attempts or the policy's shared retry
    budget run out.
    """
    plans = {p.rank: p for p in comm_plan.ranks}
    recovered: dict[int, np.ndarray] = {}
    spent = 0
    for rank in sorted(failures):
        history: list[Exception] = [failures[rank]]
        site = f"distributed.rank[{rank}]"
        for attempt in range(1, retry.max_attempts):
            if retry.budget is not None and spent >= retry.budget:
                raise RetryExhausted(
                    site, attempt, history,
                    reason=f"shared retry budget ({retry.budget}) exhausted",
                )
            spent += 1
            delay = retry.delay(attempt)
            if delay:
                time.sleep(delay)
            if faults is not None:
                faults.note_retry("distributed")
            elif obs.enabled():
                obs.inc("faults_retries_total", 1, layer="distributed")
            try:
                with obs.span("rank.recover", rank=rank, attempt=attempt):
                    recovered[rank] = _recompute_rank(plans[rank], x, faults)
            except FaultError as exc:
                history.append(exc)
                continue
            if faults is not None:
                faults.note_recovered("distributed")
            elif obs.enabled():
                obs.inc("faults_recovered_total", 1, layer="distributed")
            break
        else:
            raise RetryExhausted(site, retry.max_attempts, history)
    return recovered


def _first_failure(failures: dict) -> Exception:
    """Deterministic representative failure.

    Root-cause faults win over their symptoms: an injected crash on one
    rank starves its neighbours, so the neighbours report
    :class:`HaloExchangeTimeout` — surfacing the timeout would hide the
    actual fault.  Among same-class failures the lowest rank is chosen,
    keeping the representative deterministic.
    """
    def pick(pred):
        ranks = sorted(r for r, e in failures.items() if pred(e))
        return ranks[0] if ranks else None

    rank = pick(lambda e: isinstance(e, FaultError))
    if rank is None:
        rank = pick(lambda e: isinstance(e, DistributedTimeout))
    if rank is None:
        rank = min(failures)
    exc = failures[rank]
    if isinstance(exc, (DistributedTimeout, FaultError)):
        return exc
    return RuntimeError(f"rank {rank} failed: {exc}")


# ---------------------------------------------------------------------------
# driver (threads backend)
# ---------------------------------------------------------------------------

def distributed_spmv(
    comm_plan: CommPlan,
    x: np.ndarray,
    *,
    backend: str = "threads",
    timeout: float = _DEFAULT_TIMEOUT_S,
    mode: str = "vector",
    faults=None,
    retry=None,
) -> np.ndarray:
    """Execute ``y = A @ x`` across one worker per rank.

    ``x`` is the global RHS; the function scatters it according to the
    partition, runs the full exchange + compute on the workers and
    gathers the global result.

    ``backend="threads"`` (default) keeps everything in-process;
    ``backend="processes"`` forks one OS process per rank, so every
    halo byte really crosses an address-space boundary — the closest
    a single host gets to the paper's distributed-memory setting.

    ``mode`` selects the per-rank schedule: ``"vector"`` computes after
    the halo is complete, ``"task"`` overlaps the local kernel with the
    exchange.  Both run identical arithmetic, so results are bitwise
    equal across modes and backends.

    ``timeout`` bounds both the per-rank halo wait and the final join;
    a per-rank expiry raises :class:`HaloExchangeTimeout` naming the
    missing edges.  ``faults`` injects a seeded
    :class:`~repro.faults.FaultPlan`; ``retry`` (a
    :class:`~repro.faults.RetryPolicy`) recovers failed ranks by
    re-executing them from their immutable inputs — recovered results
    are bitwise identical to fault-free runs.  Without ``retry``,
    failures raise typed errors naming the faulting rank or edge.
    """
    if backend == "processes":
        return _distributed_spmv_processes(
            comm_plan, x, timeout=timeout, mode=mode, faults=faults, retry=retry
        )
    if backend != "threads":
        raise ValueError(
            f"backend must be 'threads' or 'processes', got {backend!r}"
        )
    if timeout <= 0:
        raise ValueError(f"timeout must be > 0, got {timeout}")
    if mode not in RUNTIME_MODES:
        raise ValueError(f"mode must be one of {RUNTIME_MODES}, got {mode!r}")
    part = comm_plan.partition
    # build_plan enforces square matrices, so the global RHS length
    # (ncols) and the row-partitioned output length (nrows) coincide;
    # keep the dimensions distinct anyway so the code documents which
    # is which.
    nrows = part.nrows
    assert nrows == comm_plan.ncols, "distributed plans require square matrices"
    x = np.ascontiguousarray(x)
    if x.shape != (comm_plan.ncols,):
        raise ValueError(f"x must have shape ({comm_plan.ncols},), got {x.shape}")

    with obs.span(
        "distributed_spmv", nparts=part.nparts, backend="threads", mode=mode
    ) as root:
        ctx = obs.capture_context()
        directives = {
            p.rank: (faults.rank_directives(p.rank) if faults is not None else ())
            for p in comm_plan.ranks
        }
        inboxes = {r.rank: queue.Queue() for r in comm_plan.ranks}
        results: list = [None] * part.nparts
        errors: list = []
        threads = []
        for plan in comm_plan.ranks:
            lo, hi = plan.row_range
            t = threading.Thread(
                target=_rank_worker,
                args=(
                    plan,
                    x[lo:hi].copy(),
                    inboxes[plan.rank],
                    inboxes,
                    results,
                    errors,
                    timeout,
                    mode,
                    directives[plan.rank],
                    ctx,
                ),
                name=f"rank-{plan.rank}",
                daemon=True,
            )
            threads.append(t)
            t.start()
        # workers self-timeout their waitall after ``timeout``; the
        # driver joins against a single global deadline with a small
        # grace so a rank that times itself out is reported through its
        # own (more precise) HaloExchangeTimeout rather than being
        # misclassified as stuck by a join/waitall photo finish.
        deadline = time.monotonic() + timeout + max(0.2, 0.25 * timeout)
        for t in threads:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
        stuck = [
            plan.rank
            for plan, t in zip(comm_plan.ranks, threads)
            if t.is_alive()
        ]

        failures: dict[int, Exception] = {}
        for rank, exc in errors:
            failures.setdefault(rank, exc)
        for rank in stuck:
            obs.inc("distributed_timeouts_total", 1, rank="driver")
            failures.setdefault(rank, DistributedTimeout([rank], timeout, "join"))

        if failures:
            if retry is None:
                exc = _first_failure(failures)
                raise exc
            for rank, y in _recover_failed_ranks(
                comm_plan, x, failures, faults, retry
            ).items():
                results[rank] = RankResult(rank, y, 0, 0)
        if any(r is None for r in results):
            raise RuntimeError(
                "distributed spMVM deadlocked (missing rank results)"
            )

        # row-partitioned output: nrows entries, one block per rank
        y = np.empty(nrows, dtype=results[0].y_local.dtype)
        for res, plan in zip(results, comm_plan.ranks):
            lo, hi = plan.row_range
            y[lo:hi] = res.y_local
        root.set_attr("nrows", nrows)
    return y


# ---------------------------------------------------------------------------
# processes backend
# ---------------------------------------------------------------------------

def _process_worker(
    plan, x_local, inbox, outboxes, result_queue, timeout, mode, directives,
    ctx=None,
) -> None:
    """Per-rank body for the multiprocessing backend.

    Runs the *same* instrumented ``_rank_body`` as the threads backend,
    so rank span chains exist in the child too.  Fork copies the
    driver's span state, so the worker first resets its tracer, then
    attaches the pickled driver :class:`~repro.obs.spans.SpanContext`
    (``ctx``) — the trace id and parent span id survive the address
    space boundary — and finally ships every span it finished home as
    the 4th element of the result tuple.  The driver adopts them,
    remapping worker-local span ids while keeping the cross-process
    parent link to its own root span intact.
    """
    spans: list = []
    try:
        if obs.enabled():
            obs.get_tracer().isolate_forked()
        results: dict = {}
        with obs.attach_context(ctx or obs.SpanContext(None)):
            _rank_body(
                plan, x_local, inbox, outboxes, results, timeout, mode, directives
            )
        if obs.enabled():
            spans = obs.get_tracer().finished()
        result_queue.put((plan.rank, results[plan.rank].y_local, None, spans))
    except (InjectedFault, HaloExchangeTimeout) as exc:
        # typed + picklable: the driver re-raises or retries these;
        # spans finished before the fault still travel home
        if obs.enabled():
            spans = obs.get_tracer().finished()
        result_queue.put((plan.rank, None, exc, spans))
    except Exception as exc:  # pragma: no cover - surfaced by the driver
        result_queue.put((plan.rank, None, repr(exc), spans))


def _distributed_spmv_processes(
    comm_plan: CommPlan,
    x: np.ndarray,
    *,
    timeout: float = _DEFAULT_TIMEOUT_S,
    mode: str = "vector",
    faults=None,
    retry=None,
) -> np.ndarray:
    """Fork one OS process per rank; halos travel through real pipes.

    Worker lifecycle is fully owned here: whatever happens — crashed
    ranks, halo timeouts, injected faults — every child is terminated
    and joined and every queue closed before this function returns, so
    a failing run never leaks live children or feeder threads
    (``multiprocessing.active_children()`` is empty afterwards).
    """
    import multiprocessing as mp

    if timeout <= 0:
        raise ValueError(f"timeout must be > 0, got {timeout}")
    if mode not in RUNTIME_MODES:
        raise ValueError(f"mode must be one of {RUNTIME_MODES}, got {mode!r}")
    x = np.ascontiguousarray(x)
    if x.shape != (comm_plan.ncols,):
        raise ValueError(f"x must have shape ({comm_plan.ncols},), got {x.shape}")
    nrows = comm_plan.partition.nrows
    assert nrows == comm_plan.ncols, "distributed plans require square matrices"
    # directives are plain data resolved in the driver's address space:
    # forked children obey them without sharing injector state
    directives = {
        p.rank: (faults.rank_directives(p.rank) if faults is not None else ())
        for p in comm_plan.ranks
    }
    ctx = mp.get_context("fork")
    inboxes = {r.rank: ctx.Queue() for r in comm_plan.ranks}
    result_queue = ctx.Queue()
    procs = []
    results: dict[int, np.ndarray] = {}
    failures: dict[int, Exception] = {}
    with obs.span(
        "distributed_spmv",
        nparts=comm_plan.partition.nparts,
        backend="processes",
        mode=mode,
    ):
        # pickled through the fork: the children parent their rank
        # spans under this driver span, in the driver's trace
        span_ctx = obs.capture_context()
        try:
            for plan in comm_plan.ranks:
                lo, hi = plan.row_range
                p = ctx.Process(
                    target=_process_worker,
                    args=(
                        plan,
                        x[lo:hi].copy(),
                        inboxes[plan.rank],
                        inboxes,
                        result_queue,
                        timeout,
                        mode,
                        directives[plan.rank],
                        span_ctx,
                    ),
                    name=f"rank-{plan.rank}",
                    daemon=True,
                )
                procs.append(p)
                p.start()
            # children self-timeout their waitall after ``timeout``; gather
            # against a global deadline with grace so a child that timed
            # itself out ships its own HaloExchangeTimeout instead of being
            # lumped into a driver-side "result gather" timeout.
            deadline = time.monotonic() + timeout + max(0.2, 0.25 * timeout)
            for _ in comm_plan.ranks:
                try:
                    rank, y, err, spans = result_queue.get(
                        timeout=max(0.05, deadline - time.monotonic())
                    )
                except queue.Empty:
                    stuck = sorted(
                        set(r.rank for r in comm_plan.ranks)
                        - set(results)
                        - set(failures)
                    )
                    obs.inc("distributed_timeouts_total", 1, rank="driver")
                    if retry is None:
                        raise DistributedTimeout(
                            stuck, timeout, "result gather"
                        ) from None
                    for r in stuck:
                        failures.setdefault(
                            r, DistributedTimeout([r], timeout, "result gather")
                        )
                    break
                if spans and obs.enabled():
                    obs.adopt_spans(spans)
                if err is None:
                    results[rank] = y
                elif isinstance(err, Exception):
                    failures[rank] = err
                else:
                    failures[rank] = RuntimeError(f"rank {rank} failed: {err}")
            for p in procs:
                p.join(timeout=max(0.05, deadline - time.monotonic()))
        finally:
            # leak guard: no failure path may strand live children or
            # unjoined queue feeder threads
            for p in procs:
                if p.is_alive():
                    p.terminate()
                p.join(timeout=5.0)
            for q in (*inboxes.values(), result_queue):
                q.close()
                q.cancel_join_thread()

        if failures:
            if retry is None:
                raise _first_failure(failures)
            results.update(
                _recover_failed_ranks(comm_plan, x, failures, faults, retry)
            )
        missing = [r.rank for r in comm_plan.ranks if r.rank not in results]
        if missing:
            raise RuntimeError(
                f"distributed spMVM deadlocked (missing rank results: {missing})"
            )

        # row-partitioned output: nrows entries, one block per rank
        out = np.empty(nrows, dtype=next(iter(results.values())).dtype)
        for plan in comm_plan.ranks:
            lo, hi = plan.row_range
            out[lo:hi] = np.asarray(results[plan.rank])
    return out
