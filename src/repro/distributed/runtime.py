"""Functional execution of the distributed spMVM with real threads.

This is the *correctness* half of the distributed layer: every rank is
a Python thread with an inbox queue; halo data really moves between
threads as buffers, following the same :class:`~repro.distributed.plan.CommPlan`
the timing simulator consumes.  A bug in the plan (wrong gather list,
wrong halo layout) breaks these results, not just a performance plot.

The exchange mirrors the mpi4py buffer idiom: senders gather owned
elements into contiguous buffers (the "local gather" of Fig. 4) and
post them tagged with their rank; receivers assemble their halo buffer
in plan order, then run ``y_local = A_local @ x_local + A_nonlocal @ halo``.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass

import numpy as np

from repro.distributed.plan import CommPlan, RankPlan
from repro.utils.validation import check_dense_vector

__all__ = ["distributed_spmv", "RankResult", "rank_spmv"]

_TIMEOUT_S = 60.0


@dataclass
class RankResult:
    """Outcome of one rank's share of the multiplication."""

    rank: int
    y_local: np.ndarray
    sent_messages: int
    received_messages: int


def rank_spmv(
    plan: RankPlan,
    x_local: np.ndarray,
    halo: np.ndarray,
) -> np.ndarray:
    """Compute one rank's result rows from local + halo data."""
    if plan.local_matrix is None or plan.nonlocal_matrix is None:
        raise ValueError(
            "plan was built with with_matrices=False; rebuild with matrices"
        )
    y = plan.local_matrix.spmv(x_local)
    if plan.nnz_nonlocal:
        y = y + plan.nonlocal_matrix.spmv(
            check_dense_vector(
                halo,
                plan.nonlocal_matrix.ncols,
                dtype=plan.nonlocal_matrix.dtype,
                name="halo",
            )
        )
    return y


def _rank_worker(
    plan: RankPlan,
    x_local: np.ndarray,
    inbox: "queue.Queue[tuple[int, np.ndarray]]",
    outboxes: dict[int, "queue.Queue[tuple[int, np.ndarray]]"],
    results: list,
    errors: list,
) -> None:
    try:
        # local gather + sends (Isend analogue: queues never block)
        sent = 0
        for dst, local_idx in plan.send_cols.items():
            outboxes[dst].put((plan.rank, x_local[local_idx].copy()))
            sent += 1

        # receive until the halo buffer is complete (Irecv + Waitall)
        pending = set(plan.recv_cols)
        segments: dict[int, np.ndarray] = {}
        while pending:
            src, buf = inbox.get(timeout=_TIMEOUT_S)
            if src not in pending:
                raise RuntimeError(f"rank {plan.rank}: unexpected message from {src}")
            if buf.shape[0] != plan.recv_cols[src].shape[0]:
                raise RuntimeError(
                    f"rank {plan.rank}: bad message size from {src}: "
                    f"{buf.shape[0]} != {plan.recv_cols[src].shape[0]}"
                )
            segments[src] = buf
            pending.discard(src)

        # assemble the halo in plan order (ascending source rank)
        if segments:
            halo = np.concatenate([segments[s] for s in sorted(segments)])
        else:
            width = plan.nonlocal_matrix.ncols if plan.nonlocal_matrix else 1
            halo = np.zeros(width, dtype=x_local.dtype)
        y = rank_spmv(plan, x_local, halo)
        results[plan.rank] = RankResult(plan.rank, y, sent, len(segments))
    except Exception as exc:  # pragma: no cover - surfaced by the driver
        errors.append((plan.rank, exc))


def distributed_spmv(
    comm_plan: CommPlan, x: np.ndarray, *, backend: str = "threads"
) -> np.ndarray:
    """Execute ``y = A @ x`` across one worker per rank.

    ``x`` is the global RHS; the function scatters it according to the
    partition, runs the full exchange + compute on the workers and
    gathers the global result.

    ``backend="threads"`` (default) keeps everything in-process;
    ``backend="processes"`` forks one OS process per rank, so every
    halo byte really crosses an address-space boundary — the closest
    a single host gets to the paper's distributed-memory setting.
    """
    if backend == "processes":
        return _distributed_spmv_processes(comm_plan, x)
    if backend != "threads":
        raise ValueError(
            f"backend must be 'threads' or 'processes', got {backend!r}"
        )
    part = comm_plan.partition
    x = np.ascontiguousarray(x)
    if x.shape != (comm_plan.ncols,):
        raise ValueError(f"x must have shape ({comm_plan.ncols},), got {x.shape}")

    inboxes = {r.rank: queue.Queue() for r in comm_plan.ranks}
    results: list = [None] * part.nparts
    errors: list = []
    threads = []
    for plan in comm_plan.ranks:
        lo, hi = plan.row_range
        t = threading.Thread(
            target=_rank_worker,
            args=(plan, x[lo:hi].copy(), inboxes[plan.rank], inboxes, results, errors),
            name=f"rank-{plan.rank}",
        )
        threads.append(t)
        t.start()
    for t in threads:
        t.join(timeout=_TIMEOUT_S)
    if errors:
        rank, exc = errors[0]
        raise RuntimeError(f"rank {rank} failed: {exc}") from exc
    if any(r is None for r in results):
        raise RuntimeError("distributed spMVM deadlocked (missing rank results)")

    y = np.empty(comm_plan.ncols, dtype=results[0].y_local.dtype)
    for res, plan in zip(results, comm_plan.ranks):
        lo, hi = plan.row_range
        y[lo:hi] = res.y_local
    return y


def _process_worker(plan, x_local, inbox, outboxes, result_queue) -> None:
    """Per-rank body for the multiprocessing backend."""
    try:
        for dst, local_idx in plan.send_cols.items():
            outboxes[dst].put((plan.rank, x_local[local_idx].copy()))
        pending = set(plan.recv_cols)
        segments = {}
        while pending:
            src, buf = inbox.get(timeout=_TIMEOUT_S)
            if src not in pending:
                raise RuntimeError(f"rank {plan.rank}: unexpected sender {src}")
            segments[src] = buf
            pending.discard(src)
        if segments:
            halo = np.concatenate([segments[s] for s in sorted(segments)])
        else:
            width = plan.nonlocal_matrix.ncols if plan.nonlocal_matrix else 1
            halo = np.zeros(width, dtype=x_local.dtype)
        y = rank_spmv(plan, x_local, halo)
        result_queue.put((plan.rank, y, None))
    except Exception as exc:  # pragma: no cover - surfaced by the driver
        result_queue.put((plan.rank, None, repr(exc)))


def _distributed_spmv_processes(comm_plan: CommPlan, x: np.ndarray) -> np.ndarray:
    """Fork one OS process per rank; halos travel through real pipes."""
    import multiprocessing as mp

    x = np.ascontiguousarray(x)
    if x.shape != (comm_plan.ncols,):
        raise ValueError(f"x must have shape ({comm_plan.ncols},), got {x.shape}")
    ctx = mp.get_context("fork")
    inboxes = {r.rank: ctx.Queue() for r in comm_plan.ranks}
    result_queue = ctx.Queue()
    procs = []
    for plan in comm_plan.ranks:
        lo, hi = plan.row_range
        p = ctx.Process(
            target=_process_worker,
            args=(plan, x[lo:hi].copy(), inboxes[plan.rank], inboxes, result_queue),
            name=f"rank-{plan.rank}",
        )
        procs.append(p)
        p.start()
    results: dict[int, np.ndarray] = {}
    error = None
    for _ in comm_plan.ranks:
        rank, y, err = result_queue.get(timeout=_TIMEOUT_S)
        if err is not None:
            error = (rank, err)
        else:
            results[rank] = y
    for p in procs:
        p.join(timeout=_TIMEOUT_S)
    if error is not None:
        raise RuntimeError(f"rank {error[0]} failed: {error[1]}")

    out = np.empty(comm_plan.ncols, dtype=next(iter(results.values())).dtype)
    for plan in comm_plan.ranks:
        lo, hi = plan.row_range
        out[lo:hi] = results[plan.rank]
    return out
