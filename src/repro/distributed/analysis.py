"""Communication-plan analysis: the quantities behind Fig. 5's shape.

Whether a matrix scales (UHBR) or collapses (DLR1) is decided by a few
per-rank ratios — halo size vs. owned rows, communication volume vs.
kernel bytes, neighbor counts.  This module computes them from a
:class:`~repro.distributed.plan.CommPlan` so users can predict scaling
behaviour *before* running the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.modes import KernelCost
from repro.distributed.plan import CommPlan

__all__ = ["CommStats", "analyse_plan"]


@dataclass(frozen=True)
class CommStats:
    """Aggregate communication statistics of one partitioning."""

    nparts: int
    total_nnz: int
    total_rows: int
    #: distinct x-elements received, summed over ranks
    total_halo_elements: int
    #: worst-case per-rank halo / owned-rows ratio
    max_halo_ratio: float
    mean_halo_ratio: float
    #: largest neighbor count of any rank
    max_neighbors: int
    mean_neighbors: float
    #: share of non-zeros referencing remote columns
    nonlocal_nnz_fraction: float
    #: load imbalance: max rank nnz / mean rank nnz
    nnz_imbalance: float
    #: estimated comm bytes / kernel bytes at DP (the scaling verdict)
    comm_to_compute_bytes: float

    @property
    def communication_bound(self) -> bool:
        """True when the exchange volume rivals the kernel traffic."""
        return self.comm_to_compute_bytes > 0.5


def analyse_plan(
    plan: CommPlan, *, cost: KernelCost | None = None
) -> CommStats:
    """Compute :class:`CommStats` for a communication plan."""
    cost = cost or KernelCost()
    ranks = plan.ranks
    n = len(ranks)
    halo = np.array([r.halo_size for r in ranks], dtype=np.float64)
    rows = np.array([r.local_rows for r in ranks], dtype=np.float64)
    nnz = np.array([r.nnz_local + r.nnz_nonlocal for r in ranks], dtype=np.float64)
    nonlocal_nnz = np.array([r.nnz_nonlocal for r in ranks], dtype=np.float64)
    neighbors = np.array([len(r.neighbors) for r in ranks], dtype=np.float64)

    ratios = halo / np.maximum(rows, 1.0)
    comm_bytes = float(halo.sum()) * cost.itemsize * 2  # send + recv sides
    kernel_bytes = float(
        nnz.sum() * cost.bytes_per_nnz + rows.sum() * cost.bytes_per_row
    )
    return CommStats(
        nparts=n,
        total_nnz=int(nnz.sum()),
        total_rows=int(rows.sum()),
        total_halo_elements=int(halo.sum()),
        max_halo_ratio=float(ratios.max()),
        mean_halo_ratio=float(ratios.mean()),
        max_neighbors=int(neighbors.max()) if n else 0,
        mean_neighbors=float(neighbors.mean()) if n else 0.0,
        nonlocal_nnz_fraction=float(nonlocal_nnz.sum() / max(nnz.sum(), 1.0)),
        nnz_imbalance=float(nnz.max() / max(nnz.mean(), 1e-30)),
        comm_to_compute_bytes=comm_bytes / max(kernel_bytes, 1e-30),
    )
