"""Event timeline records for the execution modes (Fig. 4).

The three communication modes are deterministic schedules; instead of
a general discrete-event engine we record, per rank, the intervals each
*resource* (host thread 0, host thread 1, the GPU, the PCIe bus, the
NIC) is busy with.  :func:`render_timeline` draws the Fig. 4 picture as
ASCII art for the benchmarks and examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Interval", "Timeline", "render_timeline"]


@dataclass(frozen=True)
class Interval:
    """One busy period of one resource."""

    rank: int
    resource: str  # e.g. "thread0", "thread1", "gpu", "pcie", "nic"
    label: str  # e.g. "MPI_Waitall", "local spMVM"
    start: float
    end: float

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError(f"interval ends before it starts: {self}")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """Ordered interval records of one simulated iteration."""

    intervals: list[Interval] = field(default_factory=list)

    def add(
        self, rank: int, resource: str, label: str, start: float, duration: float
    ) -> float:
        """Append an interval; returns its end time."""
        end = start + duration
        self.intervals.append(Interval(rank, resource, label, start, end))
        return end

    @property
    def makespan(self) -> float:
        return max((iv.end for iv in self.intervals), default=0.0)

    def resources(self, rank: int | None = None) -> list[str]:
        seen: dict[str, None] = {}
        for iv in self.intervals:
            if rank is None or iv.rank == rank:
                seen.setdefault(iv.resource, None)
        return list(seen)

    def for_rank(self, rank: int) -> list[Interval]:
        return [iv for iv in self.intervals if iv.rank == rank]

    def busy_seconds(self, resource: str, rank: int | None = None) -> float:
        return sum(
            iv.duration
            for iv in self.intervals
            if iv.resource == resource and (rank is None or iv.rank == rank)
        )


def to_chrome_trace(timeline: Timeline) -> list[dict]:
    """Convert to Chrome-tracing "complete" events (``chrome://tracing``).

    Each rank becomes a process, each resource a thread; dump the
    returned list as JSON (wrapped in ``{"traceEvents": [...]}``) and
    load it in any Perfetto/Chrome trace viewer.
    """
    events = []
    for iv in timeline.intervals:
        events.append(
            {
                "name": iv.label,
                "cat": iv.resource,
                "ph": "X",
                "ts": iv.start * 1e6,  # microseconds
                "dur": iv.duration * 1e6,
                "pid": iv.rank,
                "tid": iv.resource,
            }
        )
    return events


def render_timeline(
    timeline: Timeline, rank: int = 0, *, width: int = 78
) -> str:
    """ASCII rendering of one rank's timeline (the Fig. 4 picture).

    Each resource gets one lane; busy periods are drawn as labelled
    blocks positioned proportionally to wall-clock time.
    """
    ivs = timeline.for_rank(rank)
    if not ivs:
        return f"(no events for rank {rank})"
    span = max(iv.end for iv in ivs)
    if span <= 0:
        return f"(empty timeline for rank {rank})"
    lanes = timeline.resources(rank)
    name_w = max(len(r) for r in lanes) + 1
    bar_w = max(width - name_w - 2, 20)
    lines = [f"rank {rank}, 1 iteration = {span * 1e6:.1f} us"]
    for res in lanes:
        row = [" "] * bar_w
        for iv in ivs:
            if iv.resource != res:
                continue
            a = int(iv.start / span * bar_w)
            b = max(int(iv.end / span * bar_w), a + 1)
            b = min(b, bar_w)
            block = list("#" * (b - a))
            label = iv.label[: b - a - 2]
            if label and b - a >= 3:
                pos = (b - a - len(label)) // 2
                for i, ch in enumerate(label):
                    block[pos + i] = ch
            row[a:b] = block
        lines.append(f"{res:>{name_w}} |{''.join(row)}|")
    return "\n".join(lines)
