"""Distributed solver timing: a full CG iteration across the cluster.

Fig. 5 times one spMVM; a production Krylov solver adds, per iteration,
a handful of BLAS-1 sweeps on the device and two scalar all-reductions
whose latency grows with the node count.  This model composes the
spMVM mode simulation with those costs — quantifying how much of the
paper's per-spMVM gains survive inside a real solver loop, and how the
allreduce term steepens the strong-scaling collapse.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.distributed.modes import (
    KernelCost,
    NodeStats,
    simulate_mode,
)
from repro.distributed.network import DIRAC_IB, NetworkModel
from repro.gpu.device import DeviceSpec

__all__ = ["CGIterationModel", "allreduce_seconds", "model_cg_iteration"]

#: BLAS-1 sweeps per CG iteration (p update, x update, r update, 2 dots)
_CG_VECTOR_READS = 7
_CG_VECTOR_WRITES = 3
#: scalar all-reductions per CG iteration (p.Ap and r.r)
_CG_ALLREDUCE = 2


def allreduce_seconds(
    nodes: int, nbytes: int, network: NetworkModel
) -> float:
    """Tree all-reduce: 2 * ceil(log2(n)) message steps.

    The standard latency-dominated model for the short reductions a
    Krylov method issues (8-byte scalars).
    """
    if nodes < 1:
        raise ValueError(f"nodes must be >= 1, got {nodes}")
    if nodes == 1:
        return 0.0
    steps = 2 * math.ceil(math.log2(nodes))
    return steps * network.message_seconds(max(nbytes, 1))


@dataclass(frozen=True)
class CGIterationModel:
    """Per-iteration wall-clock decomposition of distributed CG."""

    nodes: int
    mode: str
    spmv_seconds: float
    blas1_seconds: float
    allreduce_seconds: float
    total_nnz: int

    @property
    def iteration_seconds(self) -> float:
        return self.spmv_seconds + self.blas1_seconds + self.allreduce_seconds

    @property
    def gflops(self) -> float:
        """spMVM-flop rate of the full iteration (the paper's metric)."""
        return 2.0 * self.total_nnz / self.iteration_seconds * 1e-9

    @property
    def spmv_share(self) -> float:
        """Fraction of the iteration spent in the spMVM — the Sect. I
        'dominating component' claim, quantified."""
        return self.spmv_seconds / self.iteration_seconds

    @property
    def iterations_per_second(self) -> float:
        return 1.0 / self.iteration_seconds


def model_cg_iteration(
    stats: list[NodeStats],
    device: DeviceSpec,
    network: NetworkModel = DIRAC_IB,
    cost: KernelCost | None = None,
    *,
    mode: str = "task",
) -> CGIterationModel:
    """Compose one CG iteration from the spMVM mode model + BLAS-1 +
    all-reduce costs."""
    cost = cost or KernelCost()
    spmv = simulate_mode(mode, stats, device, network, cost)
    rows_max = max(s.rows for s in stats)
    blas1_bytes = (_CG_VECTOR_READS + _CG_VECTOR_WRITES) * rows_max * cost.itemsize
    blas1 = (
        blas1_bytes / device.bandwidth_bytes_per_s
        + 3 * device.launch_latency_s  # axpy/axpy/dot kernel launches
    )
    reduce_t = _CG_ALLREDUCE * allreduce_seconds(len(stats), 8, network)
    return CGIterationModel(
        nodes=len(stats),
        mode=mode,
        spmv_seconds=spmv.iteration_seconds,
        blas1_seconds=blas1,
        allreduce_seconds=reduce_t,
        total_nnz=spmv.total_nnz,
    )
