"""Communication plan: who sends which x-elements to whom (Sect. III-A).

From a square CSR matrix and a :class:`RowPartition` we derive, per
rank,

* the split of its row block into a *local* part (columns it owns) and
  a *nonlocal* part (columns owned by other ranks) — the kernel split
  the overlap modes need;
* duplicate-free halo lists: the distinct global columns it must
  receive, grouped by owning rank, in a fixed order that defines the
  layout of its receive (halo) buffer;
* matching gather lists on the sender side (the "local gather" box of
  Fig. 4).

``build_plan`` can skip materialising the remapped sub-matrices when
only communication statistics are needed (the strong-scaling driver).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.formats.base import INDEX_DTYPE
from repro.formats.csr import CSRMatrix
from repro.distributed.partition import RowPartition

__all__ = ["RankPlan", "CommPlan", "build_plan"]


@dataclass
class RankPlan:
    """Everything one rank needs for its share of the spMVM."""

    rank: int
    row_range: tuple[int, int]
    #: non-zeros referencing owned / remote columns
    nnz_local: int
    nnz_nonlocal: int
    #: distinct remote columns to receive, per source rank (sorted)
    recv_cols: dict[int, np.ndarray]
    #: owned columns to send, per destination rank (sorted, *local*
    #: indices relative to this rank's row offset)
    send_cols: dict[int, np.ndarray] = field(default_factory=dict)
    #: local part: columns remapped to [0, local_rows) — only when the
    #: plan was built with ``with_matrices=True``
    local_matrix: CSRMatrix | None = None
    #: nonlocal part: columns remapped to halo-buffer positions
    nonlocal_matrix: CSRMatrix | None = None
    #: halo layout: global column of each halo-buffer slot
    halo_cols: np.ndarray | None = None

    @property
    def local_rows(self) -> int:
        return self.row_range[1] - self.row_range[0]

    @property
    def halo_size(self) -> int:
        return int(sum(len(c) for c in self.recv_cols.values()))

    @property
    def send_elements(self) -> int:
        return int(sum(len(c) for c in self.send_cols.values()))

    @property
    def neighbors(self) -> list[int]:
        return sorted(set(self.recv_cols) | set(self.send_cols))

    def recv_bytes(self, itemsize: int) -> dict[int, int]:
        return {src: len(c) * itemsize for src, c in self.recv_cols.items()}

    def send_bytes(self, itemsize: int) -> dict[int, int]:
        return {dst: len(c) * itemsize for dst, c in self.send_cols.items()}


@dataclass
class CommPlan:
    """Per-rank plans plus aggregate statistics."""

    partition: RowPartition
    ranks: list[RankPlan]
    ncols: int

    @property
    def nparts(self) -> int:
        return self.partition.nparts

    @property
    def total_nnz(self) -> int:
        return sum(r.nnz_local + r.nnz_nonlocal for r in self.ranks)

    @property
    def total_comm_elements(self) -> int:
        return sum(r.halo_size for r in self.ranks)

    def max_rank_seconds_hint(self) -> int:
        """Largest per-rank non-zero count (load-balance indicator)."""
        return max(r.nnz_local + r.nnz_nonlocal for r in self.ranks)


def build_plan(
    matrix: CSRMatrix,
    partition: RowPartition,
    *,
    with_matrices: bool = True,
) -> CommPlan:
    """Derive the communication plan of ``matrix`` under ``partition``."""
    if matrix.nrows != matrix.ncols:
        raise ValueError("distributed spMVM requires a square matrix")
    if partition.nrows != matrix.nrows:
        raise ValueError(
            f"partition covers {partition.nrows} rows, matrix has {matrix.nrows}"
        )
    nparts = partition.nparts
    offsets = partition.offsets
    plans: list[RankPlan] = []

    for rank in range(nparts):
        lo, hi = partition.row_range(rank)
        block = matrix.row_block(lo, hi)
        owned = np.zeros(matrix.ncols, dtype=bool)
        owned[lo:hi] = True
        local_part, nonlocal_part = block.split_columns(owned)

        remote_cols = np.unique(nonlocal_part.indices) if nonlocal_part.nnz else (
            np.empty(0, dtype=INDEX_DTYPE)
        )
        src_of = partition.owner_of(remote_cols) if remote_cols.size else (
            np.empty(0, dtype=np.int64)
        )
        recv_cols: dict[int, np.ndarray] = {}
        for src in np.unique(src_of):
            recv_cols[int(src)] = remote_cols[src_of == src]

        plan = RankPlan(
            rank=rank,
            row_range=(lo, hi),
            nnz_local=local_part.nnz,
            nnz_nonlocal=nonlocal_part.nnz,
            recv_cols=recv_cols,
        )
        if with_matrices:
            # local part: shift columns into [0, local_rows)
            lp = CSRMatrix(
                local_part.indptr.copy(),
                local_part.indices - lo,
                local_part.data.copy(),
                (plan.local_rows, plan.local_rows),
            )
            # nonlocal part: remap columns to halo-buffer slots.  The
            # halo buffer concatenates the per-source sorted column
            # lists in ascending source order == ascending global
            # column order (sources own contiguous ranges), so the
            # remap is a single searchsorted over remote_cols.
            halo_pos = np.searchsorted(remote_cols, nonlocal_part.indices)
            np_ = CSRMatrix(
                nonlocal_part.indptr.copy(),
                halo_pos.astype(INDEX_DTYPE),
                nonlocal_part.data.copy(),
                (plan.local_rows, max(remote_cols.size, 1)),
            )
            plan.local_matrix = lp
            plan.nonlocal_matrix = np_
            plan.halo_cols = remote_cols
        plans.append(plan)

    # sender-side gather lists mirror the receive lists
    for plan in plans:
        for src, cols in plan.recv_cols.items():
            src_lo = int(offsets[src])
            plans[src].send_cols[plan.rank] = cols - src_lo
    return CommPlan(partition=partition, ranks=plans, ncols=matrix.ncols)
