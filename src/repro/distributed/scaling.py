"""Strong-scaling driver — regenerates the Fig. 5 series.

For each node count: partition the matrix by non-zeros, derive the
communication plan, extract per-rank workload statistics (re-inflated
to paper scale when the matrix was generated shrunk), and simulate one
bulk-synchronous iteration in each mode.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distributed.modes import (
    MODES,
    KernelCost,
    ModeResult,
    simulate_mode,
    stats_from_plan,
)
from repro.distributed.network import DIRAC_IB, NetworkModel
from repro.distributed.partition import partition_rows
from repro.distributed.plan import build_plan
from repro.formats.base import SparseMatrixFormat
from repro.formats.csr import CSRMatrix
from repro.gpu.device import DeviceSpec
from repro.gpu.pcie import transfer_seconds

__all__ = ["ScalingPoint", "ScalingSeries", "strong_scaling", "weak_scaling", "single_gpu_effective_gflops"]


@dataclass(frozen=True)
class ScalingPoint:
    """One (node count, mode) measurement."""

    nodes: int
    mode: str
    gflops: float
    iteration_seconds: float

    def efficiency(self, baseline: "ScalingPoint") -> float:
        """Parallel efficiency vs. a baseline point (usually 1 node)."""
        ideal = baseline.gflops * self.nodes / baseline.nodes
        return self.gflops / ideal


@dataclass
class ScalingSeries:
    """Fig. 5-style result: GF/s per node count, one series per mode."""

    matrix_name: str
    points: list[ScalingPoint]

    def series(self, mode: str) -> list[ScalingPoint]:
        return sorted(
            (p for p in self.points if p.mode == mode), key=lambda p: p.nodes
        )

    def gflops_at(self, mode: str, nodes: int) -> float:
        for p in self.points:
            if p.mode == mode and p.nodes == nodes:
                return p.gflops
        raise KeyError(f"no point for mode={mode!r}, nodes={nodes}")

    def node_counts(self) -> list[int]:
        return sorted({p.nodes for p in self.points})

    def render(self, *, height: int = 14, width: int = 68) -> str:
        """ASCII rendering of the Fig. 5 panel (GF/s vs node count).

        One symbol per mode: ``v`` vector, ``n`` naive, ``t`` task;
        overlapping points show the later symbol.
        """
        modes = sorted({p.mode for p in self.points})
        symbols = {"vector": "v", "naive": "n", "task": "t"}
        nodes = self.node_counts()
        if not nodes:
            return "(empty series)"
        gmax = max(p.gflops for p in self.points)
        grid = [[" "] * width for _ in range(height)]
        xpos = {
            n: int(round(i * (width - 1) / max(len(nodes) - 1, 1)))
            for i, n in enumerate(nodes)
        }
        for mode in modes:
            sym = symbols.get(mode, mode[0])
            for p in self.series(mode):
                y = int(round((height - 1) * p.gflops / gmax))
                grid[height - 1 - y][xpos[p.nodes]] = sym
        lines = [f"{self.matrix_name}: GF/s vs nodes (max {gmax:.1f})"]
        lines += ["|" + "".join(row) for row in grid]
        axis = [" "] * width
        for n, x in xpos.items():
            label = str(n)
            for k, ch in enumerate(label):
                if x + k < width:
                    axis[x + k] = ch
        lines.append("+" + "-" * width)
        lines.append(" " + "".join(axis))
        lines.append("  legend: " + ", ".join(f"{symbols.get(m, m[0])}={m}" for m in modes))
        return "\n".join(lines)


def strong_scaling(
    matrix: SparseMatrixFormat,
    node_counts: list[int],
    *,
    device: DeviceSpec,
    network: NetworkModel = DIRAC_IB,
    cost: KernelCost | None = None,
    modes: tuple[str, ...] = MODES,
    workload_scale: int = 1,
    matrix_name: str = "matrix",
) -> ScalingSeries:
    """Run the strong-scaling sweep of Fig. 5.

    ``workload_scale`` re-inflates a shrunk suite matrix (see
    ``NodeStats.from_plan``); node counts are paper node counts.
    """
    csr = matrix if isinstance(matrix, CSRMatrix) else CSRMatrix.from_coo(
        matrix.to_coo()
    )
    cost = cost or KernelCost()
    points: list[ScalingPoint] = []
    for nodes in node_counts:
        part = partition_rows(csr.nrows, nodes, row_weights=csr.row_lengths())
        plan = build_plan(csr, part, with_matrices=False)
        stats = stats_from_plan(
            plan, itemsize=cost.itemsize, workload_scale=workload_scale
        )
        for mode in modes:
            result: ModeResult = simulate_mode(mode, stats, device, network, cost)
            points.append(
                ScalingPoint(
                    nodes=nodes,
                    mode=mode,
                    gflops=result.gflops,
                    iteration_seconds=result.iteration_seconds,
                )
            )
    return ScalingSeries(matrix_name=matrix_name, points=points)


def weak_scaling(
    matrix_factory,
    node_counts: list[int],
    *,
    device: DeviceSpec,
    network: NetworkModel = DIRAC_IB,
    cost: KernelCost | None = None,
    modes: tuple[str, ...] = MODES,
    workload_scale: int = 1,
    matrix_name: str = "matrix",
) -> ScalingSeries:
    """Weak-scaling sweep: per-node problem size held constant.

    The paper's outlook lists "more extensive scaling studies" as
    future work; weak scaling is the natural complement to Fig. 5.
    ``matrix_factory(nodes)`` must return a matrix that grows
    proportionally with the node count (e.g. the suite generators with
    ``scale`` divided accordingly).
    """
    cost = cost or KernelCost()
    points: list[ScalingPoint] = []
    for nodes in node_counts:
        matrix = matrix_factory(nodes)
        csr = matrix if isinstance(matrix, CSRMatrix) else CSRMatrix.from_coo(
            matrix.to_coo()
        )
        part = partition_rows(csr.nrows, nodes, row_weights=csr.row_lengths())
        plan = build_plan(csr, part, with_matrices=False)
        stats = stats_from_plan(
            plan, itemsize=cost.itemsize, workload_scale=workload_scale
        )
        for mode in modes:
            result = simulate_mode(mode, stats, device, network, cost)
            points.append(
                ScalingPoint(
                    nodes=nodes,
                    mode=mode,
                    gflops=result.gflops,
                    iteration_seconds=result.iteration_seconds,
                )
            )
    return ScalingSeries(matrix_name=matrix_name, points=points)


def single_gpu_effective_gflops(
    nnz: int,
    nrows: int,
    device: DeviceSpec,
    cost: KernelCost | None = None,
) -> float:
    """Single-GPU performance including the PCIe vector transfers.

    The dashed horizontal reference lines of Fig. 5 (10.9 GF/s for
    DLR1, 44.6 GF/s for UHBR): one kernel plus the RHS upload and LHS
    download of Eq. (2).
    """
    cost = cost or KernelCost()
    t_kernel = cost.kernel_seconds(nnz, nrows, device)
    t_pci = 2.0 * transfer_seconds(nrows * cost.itemsize, device)
    return 2.0 * nnz / (t_kernel + t_pci) * 1e-9
