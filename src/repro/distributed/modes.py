"""The three multi-GPGPU execution modes of Sect. III-A.

* **vector mode** — communication is a separate bulk-synchronous phase;
  the spMVM runs afterwards in a single unsplit kernel.
* **naive overlap** — the kernel is split into local and nonlocal
  parts and the local part is "overlapped" with non-blocking MPI.
  Since MPI libraries rarely progress messages asynchronously, only a
  fraction of the transfer really hides behind the kernel; the rest is
  served inside ``MPI_Waitall``.  The split also writes the result
  vector twice (the +8/Nnzr bytes/flop penalty the paper notes).
* **task mode** — a dedicated host thread drives MPI, giving reliably
  asynchronous transfers: communication fully overlaps the local
  kernel (Fig. 4).

All modes share the same per-rank cost pieces, computed from the
:class:`~repro.distributed.plan.CommPlan` statistics, the GPU's
bandwidth model, the PCIe model and the interconnect model.  One
iteration is bulk-synchronous: its wall-clock is the slowest rank's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.distributed.events import Timeline
from repro.distributed.network import NetworkModel
from repro.distributed.plan import CommPlan, RankPlan
from repro.gpu.device import DeviceSpec
from repro.gpu.pcie import transfer_seconds

__all__ = ["MODES", "NodeStats", "KernelCost", "ModeResult", "simulate_mode"]

MODES = ("vector", "naive", "task")


@dataclass(frozen=True)
class NodeStats:
    """Scale-free workload description of one rank."""

    rank: int
    rows: int
    nnz_local: int
    nnz_nonlocal: int
    send_elements: int
    halo_elements: int
    send_bytes: dict[int, int]
    recv_bytes: dict[int, int]

    @property
    def nnz(self) -> int:
        return self.nnz_local + self.nnz_nonlocal

    @classmethod
    def from_plan(
        cls, plan: RankPlan, itemsize: int, *, workload_scale: int = 1
    ) -> "NodeStats":
        """Extract stats, optionally re-inflating a 1/scale matrix.

        ``workload_scale`` multiplies every extensive quantity (rows,
        non-zeros, message sizes) so that a plan built on a shrunk
        suite matrix reproduces paper-scale timings; intensive
        quantities (Nnzr, halo/rows ratios) are unchanged because the
        suite generators shrink dimensions and strides together.
        """
        s = workload_scale
        return cls(
            rank=plan.rank,
            rows=plan.local_rows * s,
            nnz_local=plan.nnz_local * s,
            nnz_nonlocal=plan.nnz_nonlocal * s,
            send_elements=plan.send_elements * s,
            halo_elements=plan.halo_size * s,
            send_bytes={d: b * s for d, b in plan.send_bytes(itemsize).items()},
            recv_bytes={d: b * s for d, b in plan.recv_bytes(itemsize).items()},
        )


@dataclass(frozen=True)
class KernelCost:
    """Linear kernel-time model: bandwidth-bound bytes per nnz / row.

    Defaults follow Eq. (1) at double precision: 12 bytes of matrix
    data per non-zero plus ``8 * alpha`` of RHS traffic, and 20 bytes
    per row (16 for the LHS read-modify-write + 4 for ``rowmax``).
    """

    bytes_per_nnz: float = 12.0 + 8.0 * 0.3
    bytes_per_row: float = 20.0
    itemsize: int = 8

    @classmethod
    def from_alpha(cls, alpha: float, precision: str = "DP") -> "KernelCost":
        if precision == "DP":
            return cls(12.0 + 8.0 * alpha, 20.0, 8)
        if precision == "SP":
            return cls(8.0 + 4.0 * alpha, 12.0, 4)
        raise ValueError(f"precision must be 'SP' or 'DP', got {precision!r}")

    def kernel_seconds(self, nnz: int, rows: int, device: DeviceSpec) -> float:
        bytes_ = nnz * self.bytes_per_nnz + rows * self.bytes_per_row
        return bytes_ / device.bandwidth_bytes_per_s + device.launch_latency_s

    def gather_seconds(self, elements: int, device: DeviceSpec) -> float:
        """Pack owned elements into the contiguous send buffer (on GPU)."""
        if elements == 0:
            return 0.0
        return (
            2.0 * self.itemsize * elements / device.bandwidth_bytes_per_s
            + device.launch_latency_s
        )


@dataclass
class ModeResult:
    """One simulated bulk-synchronous spMVM iteration."""

    mode: str
    nparts: int
    iteration_seconds: float
    per_rank_seconds: list[float]
    total_nnz: int
    timeline: Timeline

    @property
    def gflops(self) -> float:
        return 2.0 * self.total_nnz / self.iteration_seconds * 1e-9

    @property
    def slowest_rank(self) -> int:
        return max(
            range(len(self.per_rank_seconds)), key=self.per_rank_seconds.__getitem__
        )


def _mpi_seconds(stats: NodeStats, network: NetworkModel) -> float:
    """One rank's exchange: full duplex, slower direction dominates."""
    return max(
        network.exchange_seconds(stats.send_bytes),
        network.exchange_seconds(stats.recv_bytes),
    )


def _vector_mode(
    stats: list[NodeStats],
    device: DeviceSpec,
    network: NetworkModel,
    cost: KernelCost,
    tl: Timeline,
) -> list[float]:
    """Vector mode is bulk-synchronous *per phase*: the RHS distribution
    is one global communication step, so every rank waits for the
    slowest gather/download before exchanging and for the slowest
    exchange before computing — the synchronisation cost that makes
    this mode fall behind at scale (Fig. 5)."""
    pre = []
    for s in stats:
        g = cost.gather_seconds(s.send_elements, device)
        d = transfer_seconds(s.send_elements * cost.itemsize, device)
        tl.add(s.rank, "gpu", "gather", 0.0, g)
        tl.add(s.rank, "pcie", "DL buf", g, d)
        pre.append(g + d)
    t1 = max(pre)
    mpi = [_mpi_seconds(s, network) for s in stats]
    for s, m in zip(stats, mpi):
        tl.add(s.rank, "nic", "MPI exchange", t1, m)
    t2 = t1 + max(mpi)
    ends = []
    for s in stats:
        t = tl.add(
            s.rank,
            "pcie",
            "UL halo",
            t2,
            transfer_seconds(s.halo_elements * cost.itemsize, device),
        )
        # one unsplit kernel over the full row block
        ends.append(
            tl.add(s.rank, "gpu", "spMVM", t, cost.kernel_seconds(s.nnz, s.rows, device))
        )
    return ends


def _rank_naive(
    stats: NodeStats,
    device: DeviceSpec,
    network: NetworkModel,
    cost: KernelCost,
    tl: Timeline,
    *,
    async_progress_fraction: float,
) -> float:
    r = stats.rank
    t = tl.add(r, "gpu", "gather", 0.0, cost.gather_seconds(stats.send_elements, device))
    t = tl.add(
        r, "pcie", "DL buf", t, transfer_seconds(stats.send_elements * cost.itemsize, device)
    )
    # split kernel: the local part nominally overlaps the non-blocking
    # transfers, but only a fraction of the message time progresses
    t_local = cost.kernel_seconds(stats.nnz_local, stats.rows, device)
    t_mpi = _mpi_seconds(stats, network)
    hidden = min(async_progress_fraction * t_mpi, t_local)
    local_end = tl.add(r, "gpu", "local spMVM", t, t_local)
    wait = t_mpi - hidden
    t2 = tl.add(r, "nic", "MPI_Waitall", local_end, wait)
    t2 = tl.add(
        r, "pcie", "UL halo", t2, transfer_seconds(stats.halo_elements * cost.itemsize, device)
    )
    return tl.add(
        r,
        "gpu",
        "nonlocal spMVM",
        t2,
        cost.kernel_seconds(stats.nnz_nonlocal, stats.rows, device),
    )


def _rank_task(
    stats: NodeStats,
    device: DeviceSpec,
    network: NetworkModel,
    cost: KernelCost,
    tl: Timeline,
) -> float:
    r = stats.rank
    # GPU: gather kernel, then the local spMVM back to back
    g_end = tl.add(
        r, "gpu", "gather", 0.0, cost.gather_seconds(stats.send_elements, device)
    )
    local_end = tl.add(
        r,
        "gpu",
        "local spMVM",
        g_end,
        cost.kernel_seconds(stats.nnz_local, stats.rows, device),
    )
    # thread 0: download the send buffer, run MPI fully asynchronously
    dl_end = tl.add(
        r,
        "pcie",
        "DL buf",
        g_end,
        transfer_seconds(stats.send_elements * cost.itemsize, device),
    )
    tl.add(r, "thread0", "MPI_Irecv/Isend", g_end, 0.0)
    mpi_end = tl.add(r, "thread0", "MPI_Waitall", dl_end, _mpi_seconds(stats, network))
    ul_end = tl.add(
        r,
        "pcie",
        "UL halo",
        mpi_end,
        transfer_seconds(stats.halo_elements * cost.itemsize, device),
    )
    start_nl = max(local_end, ul_end)
    return tl.add(
        r,
        "gpu",
        "nonlocal spMVM",
        start_nl,
        cost.kernel_seconds(stats.nnz_nonlocal, stats.rows, device),
    )


def simulate_mode(
    mode: str,
    stats: list[NodeStats],
    device: DeviceSpec,
    network: NetworkModel,
    cost: KernelCost | None = None,
    *,
    async_progress_fraction: float = 0.35,
    faults=None,
) -> ModeResult:
    """Simulate one bulk-synchronous iteration of ``mode``.

    ``faults`` (a :class:`~repro.faults.inject.FaultInjector`) perturbs
    the per-rank workloads before simulation: ``slow_worker`` events
    targeting a rank inflate its kernel workload, ``halo_delay`` events
    its message volume, so injected faults appear as genuinely longer
    intervals in the simulated Fig. 4 timeline.  Perturbed ranks get a
    zero-length ``fault:<kinds>`` marker on a dedicated timeline lane.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    if not stats:
        raise ValueError("stats must not be empty")
    if not 0.0 <= async_progress_fraction <= 1.0:
        raise ValueError("async_progress_fraction must be in [0, 1]")
    cost = cost or KernelCost()
    tl = Timeline()
    if faults is not None:
        perturbed: list[NodeStats] = []
        for s in stats:
            s, kinds = faults.perturb_node(s)
            if kinds:
                tl.add(s.rank, "fault", "fault:" + "+".join(sorted(set(kinds))), 0.0, 0.0)
            perturbed.append(s)
        stats = perturbed
    if mode == "vector":
        per_rank = _vector_mode(stats, device, network, cost, tl)
    else:
        per_rank = []
        for s in stats:
            if mode == "naive":
                end = _rank_naive(
                    s,
                    device,
                    network,
                    cost,
                    tl,
                    async_progress_fraction=async_progress_fraction,
                )
            else:
                end = _rank_task(s, device, network, cost, tl)
            per_rank.append(end)
    result = ModeResult(
        mode=mode,
        nparts=len(stats),
        iteration_seconds=max(per_rank),
        per_rank_seconds=per_rank,
        total_nnz=sum(s.nnz for s in stats),
        timeline=tl,
    )
    if obs.enabled():
        # bridge the Fig. 4 intervals into spans so simulated runs
        # share the Chrome-trace export path with real threaded runs
        obs.record_timeline(tl, root_name="distributed_spmv", mode=mode)
        mode_labels = {"mode": mode, "nparts": str(len(stats))}
        obs.set_gauge("mode_iteration_seconds", result.iteration_seconds, **mode_labels)
        obs.set_gauge("mode_gflops", result.gflops, **mode_labels)
        obs.inc("mode_iterations_total", 1, **mode_labels)
        for s in stats:
            obs.inc(
                "halo_bytes_sent",
                float(sum(s.send_bytes.values())),
                rank=str(s.rank),
                mode=mode,
            )
    return result


def stats_from_plan(
    comm_plan: CommPlan, *, itemsize: int = 8, workload_scale: int = 1
) -> list[NodeStats]:
    """Convenience: extract :class:`NodeStats` for every rank."""
    return [
        NodeStats.from_plan(p, itemsize, workload_scale=workload_scale)
        for p in comm_plan.ranks
    ]
