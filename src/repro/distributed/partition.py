"""Row-block partitioning for distributed spMVM (Sect. III).

Following the paper (and ref. [4]), the matrix is distributed by
contiguous row blocks; the RHS/LHS vectors are distributed conformally,
so a process owns the x-elements whose indices fall inside its row
range.  Everything a rank needs outside that range is *nonlocal* and
must be communicated.

Blocks are balanced by non-zero count (the quantity kernel time
follows), not by row count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = ["RowPartition", "partition_rows"]


@dataclass(frozen=True)
class RowPartition:
    """Contiguous row blocks: rank r owns rows [offsets[r], offsets[r+1])."""

    offsets: np.ndarray  # shape (nparts + 1,), offsets[0] = 0

    def __post_init__(self):
        off = np.asarray(self.offsets)
        if off.ndim != 1 or off.shape[0] < 2:
            raise ValueError("offsets must be 1-D with at least 2 entries")
        if off[0] != 0 or np.any(np.diff(off) < 0):
            raise ValueError("offsets must start at 0 and be non-decreasing")

    @property
    def nparts(self) -> int:
        return self.offsets.shape[0] - 1

    @property
    def nrows(self) -> int:
        return int(self.offsets[-1])

    def row_range(self, rank: int) -> tuple[int, int]:
        if not 0 <= rank < self.nparts:
            raise ValueError(f"rank {rank} out of range for {self.nparts} parts")
        return int(self.offsets[rank]), int(self.offsets[rank + 1])

    def rows_of(self, rank: int) -> int:
        lo, hi = self.row_range(rank)
        return hi - lo

    def owner_of(self, indices: np.ndarray) -> np.ndarray:
        """Owning rank of each global row/column index."""
        idx = np.asarray(indices)
        if idx.size and (idx.min() < 0 or idx.max() >= self.nrows):
            raise ValueError("indices out of range")
        return np.searchsorted(self.offsets, idx, side="right") - 1

    def __iter__(self):
        for r in range(self.nparts):
            yield self.row_range(r)


def partition_rows(
    nrows: int,
    nparts: int,
    *,
    row_weights: np.ndarray | None = None,
) -> RowPartition:
    """Split ``nrows`` rows into ``nparts`` contiguous, weight-balanced blocks.

    ``row_weights`` defaults to uniform; pass the per-row non-zero
    counts to balance kernel work (what the paper's code does).
    """
    nrows = check_positive_int(nrows, "nrows")
    nparts = check_positive_int(nparts, "nparts")
    if nparts > nrows:
        raise ValueError(f"cannot split {nrows} rows into {nparts} parts")
    if row_weights is None:
        offsets = np.rint(np.linspace(0, nrows, nparts + 1)).astype(np.int64)
    else:
        w = np.asarray(row_weights, dtype=np.float64)
        if w.shape != (nrows,):
            raise ValueError(f"row_weights must have shape ({nrows},)")
        if np.any(w < 0):
            raise ValueError("row_weights must be non-negative")
        csum = np.concatenate(([0.0], np.cumsum(w)))
        targets = np.linspace(0.0, csum[-1], nparts + 1)
        offsets = np.searchsorted(csum, targets, side="left").astype(np.int64)
        offsets[0] = 0
        offsets[-1] = nrows
        # enforce strictly increasing offsets (every rank gets >= 1 row)
        for r in range(1, nparts):
            if offsets[r] <= offsets[r - 1]:
                offsets[r] = offsets[r - 1] + 1
        if offsets[nparts - 1] >= nrows:
            # ran out of rows at the tail; re-spread the final blocks
            offsets = np.rint(np.linspace(0, nrows, nparts + 1)).astype(np.int64)
    return RowPartition(offsets)
