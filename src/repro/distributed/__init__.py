"""Multi-GPGPU distributed spMVM layer (Sect. III of the paper)."""

from repro.distributed.analysis import CommStats, analyse_plan
from repro.distributed.events import Interval, Timeline, render_timeline, to_chrome_trace
from repro.distributed.modes import (
    MODES,
    KernelCost,
    ModeResult,
    NodeStats,
    simulate_mode,
    stats_from_plan,
)
from repro.distributed.network import DIRAC_IB, NetworkModel
from repro.distributed.partition import RowPartition, partition_rows
from repro.distributed.plan import CommPlan, RankPlan, build_plan
from repro.distributed.runtime import (
    RUNTIME_MODES,
    DistributedTimeout,
    HaloExchangeTimeout,
    RankResult,
    distributed_spmv,
    rank_spmv,
)
from repro.distributed.solver_model import (
    CGIterationModel,
    allreduce_seconds,
    model_cg_iteration,
)
from repro.distributed.scaling import (
    ScalingPoint,
    ScalingSeries,
    single_gpu_effective_gflops,
    strong_scaling,
    weak_scaling,
)

__all__ = [
    "CommStats",
    "analyse_plan",
    "Interval",
    "Timeline",
    "render_timeline",
    "to_chrome_trace",
    "MODES",
    "KernelCost",
    "ModeResult",
    "NodeStats",
    "simulate_mode",
    "stats_from_plan",
    "DIRAC_IB",
    "NetworkModel",
    "RowPartition",
    "partition_rows",
    "CommPlan",
    "RankPlan",
    "build_plan",
    "DistributedTimeout",
    "HaloExchangeTimeout",
    "RUNTIME_MODES",
    "RankResult",
    "distributed_spmv",
    "rank_spmv",
    "ScalingPoint",
    "ScalingSeries",
    "single_gpu_effective_gflops",
    "strong_scaling",
    "weak_scaling",
    "CGIterationModel",
    "allreduce_seconds",
    "model_cg_iteration",
]
